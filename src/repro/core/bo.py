"""Sequential Bayesian optimization (paper §II-B baselines + EasyBO B=1).

:class:`BODriverBase` holds everything the sequential, synchronous-batch, and
asynchronous drivers share: the surrogate session, the initial design, the
evaluation pool, and result packaging.  :class:`SequentialBO` is the classic
one-point-at-a-time loop with a pluggable acquisition (EI / LCB / UCB / PI /
EasyBO's randomized-weight rule).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.acquisition import EASYBO_LAMBDA
from repro.core.campaign import Campaign, SequentialStrategy
from repro.core.doe import random_design
from repro.core.faults import FailurePolicy
from repro.core.journal import JOURNAL_VERSION, JournalWriter
from repro.core.problem import STATUS_ORPHANED, Problem
from repro.core.results import RunResult
from repro.obs import Observability
from repro.sched.trace import EvalRecord
from repro.sched.workers import Completion, VirtualWorkerPool
from repro.utils.rng import as_generator, rng_state_to_dict

__all__ = ["BODriverBase", "SequentialBO", "shutdown_pool"]


def shutdown_pool(pool) -> None:
    """Release a pool's resources if it has any (``close()`` is optional).

    Drivers call this from a ``finally`` so that an exception mid-run —
    a KeyboardInterrupt, a surrogate failure, a problem bug — cannot leak
    live worker threads or processes behind the traceback.
    """
    close = getattr(pool, "close", None)
    if callable(close):
        close()


class BODriverBase:
    """Shared machinery for all BO drivers.

    Parameters
    ----------
    problem:
        The black-box maximization problem.
    n_init:
        Random initial samples (the paper uses 20).
    max_evals:
        Total evaluation budget, *including* the initial design.
    rng:
        Seed or generator; the whole run is deterministic given it.
    pool_factory:
        Callable ``(problem, n_workers) -> pool``; defaults to the
        simulated-clock :class:`VirtualWorkerPool`.  Pass
        :class:`~repro.sched.executor.ThreadWorkerPool` for real concurrency.
    failure_policy:
        :class:`~repro.core.faults.FailurePolicy` shared by the pool (retry
        / timeout behaviour) and the driver (impute-or-drop of failed
        evaluations).  Defaults to no retries with pessimistic imputation.
    surrogate_update:
        ``"incremental"`` (default) reuses the surrogate's cached Cholesky
        factor between hyperparameter fits and serves the pending-point
        hallucination through a factor-sharing view; ``"full"`` rebuilds
        the factored system from scratch at every event.  Both produce the
        same posterior up to round-off (see
        ``tests/test_incremental_equivalence.py``).
    refit_every:
        Run ML-II hyperparameter fitting only every K-th surrogate refit
        (default 1 = every event, the paper's schedule).  Raising K is
        where the incremental path's O(n^3) -> O(n^2) per-event win comes
        from.
    surrogate / max_exact_n / n_inducing:
        Posterior representation: ``"exact"``, ``"sparse"``, or ``"auto"``
        (default — exact until ``max_exact_n`` observations, then the
        budgeted inducing-point posterior with ``n_inducing`` points; see
        docs/surrogate_scaling.md).  ``None`` for the thresholds keeps the
        session defaults.
    journal:
        Crash-safety sink: a path (a :class:`~repro.core.journal.JournalWriter`
        is opened on it) or any object with an ``append(record)`` method.
        Every state transition of the run — start, initial design, issue,
        completion, batch selection, checkpoint, end — is appended as one
        fsync'd framed record, and :func:`repro.core.recovery.resume` can
        replay the file to continue a crashed run on the exact trajectory
        the uninterrupted run would have taken.  ``None`` (default)
        disables journaling; it changes nothing about the trajectory.
    checkpoint_every:
        Emit an integrity ``checkpoint`` record every this-many completed
        evaluations (0 = never).  Checkpoints are cross-checks, not the
        recovery mechanism — resume replays the full event log.
    tracer:
        Optional :class:`~repro.obs.Tracer`: the run emits a hierarchical
        span tree (run → iteration → fit / hallucinate /
        acquisition-maximize / dispatch / wait) as CRC-framed JSONL,
        renderable with ``python -m repro trace <file>``.  ``None``
        (default) disables tracing at no measurable cost.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`: counters, gauges, and
        histograms for the run (acquisition restarts, Cholesky updates vs
        refits, hallucinations, pool queue waits, orphan/reissue totals).
        The final snapshot lands in ``RunResult.metrics`` and persists as
        runs format v6.  Counters already derivable from the trace,
        ``SurrogateStats``, or ``PoolTelemetry`` are folded in *once* at
        packaging time, so resumed runs never double-count replayed events.
    """

    #: Subclasses set their display name (used in result rows).
    algorithm_name = "bo"

    def __init__(
        self,
        problem: Problem,
        *,
        n_init: int = 20,
        max_evals: int = 150,
        rng=None,
        pool_factory=None,
        acq_candidates: int = 2048,
        acq_restarts: int = 4,
        failure_policy: FailurePolicy | None = None,
        surrogate_update: str = "incremental",
        surrogate: str = "auto",
        max_exact_n: int | None = None,
        n_inducing: int | None = None,
        refit_every: int = 1,
        journal=None,
        checkpoint_every: int = 0,
        tracer=None,
        metrics=None,
    ):
        if n_init < 2:
            raise ValueError("n_init must be >= 2 (the GP needs data)")
        if max_evals < n_init:
            raise ValueError("max_evals must be >= n_init")
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        self.problem = problem
        self.n_init = int(n_init)
        self.max_evals = int(max_evals)
        self.rng = as_generator(rng)
        self.pool_factory = pool_factory or VirtualWorkerPool
        self.failure_policy = failure_policy or FailurePolicy()
        self.acq_candidates = int(acq_candidates)
        self.acq_restarts = int(acq_restarts)
        self.journal = journal
        self.checkpoint_every = int(checkpoint_every)
        self.obs = Observability(tracer, metrics)
        self._run_span = None
        # The ask/tell core: proposal pipeline, pending-point bookkeeping,
        # and failure-policy state all live here.  The driver is a thin loop
        # over it — subclasses plug in their family strategy after super().
        self.campaign = Campaign(
            problem,
            None,
            n_init=self.n_init,
            max_evals=self.max_evals,
            rng=self.rng,
            failure_policy=self.failure_policy,
            acq_candidates=self.acq_candidates,
            acq_restarts=self.acq_restarts,
            surrogate_update=surrogate_update,
            surrogate=surrogate,
            max_exact_n=max_exact_n,
            n_inducing=n_inducing,
            refit_every=refit_every,
            obs=self.obs,
            algorithm=self.algorithm_name,
            embedded=True,
        )
        self._journal = None
        self._owns_journal = False
        self._since_checkpoint = 0
        # Async drivers overwrite this with their pending-point policy name;
        # it rides along in the packaged RunResult (runs format v7).
        self.pending_policy: str | None = None

    # ------------------------------------------------------- campaign state
    @property
    def session(self):
        """The surrogate session (owned by the embedded campaign)."""
        return self.campaign.session

    @property
    def _reissue_counts(self) -> dict[bytes, int]:
        return self.campaign.reissue_counts

    @_reissue_counts.setter
    def _reissue_counts(self, value) -> None:
        self.campaign.reissue_counts = dict(value)

    @property
    def _last_absorb(self) -> tuple[str | None, float | None]:
        return self.campaign.last_action

    # ------------------------------------------------------------- helpers
    def _make_pool(self, n_workers: int):
        """Build the evaluation pool, passing the failure policy through.

        Custom ``pool_factory`` callables that predate failure handling may
        only accept ``(problem, n_workers)``; fall back to that signature.
        """
        try:
            pool = self.pool_factory(
                self.problem, n_workers, policy=self.failure_policy
            )
        except TypeError:
            pool = self.pool_factory(self.problem, n_workers)
        # Attach observability post-construction so any factory signature
        # (including user-supplied ones) picks it up.
        bind = getattr(pool, "bind_observability", None)
        if callable(bind):
            bind(self.obs)
        return pool

    def _initial_design(self) -> np.ndarray:
        return random_design(self.problem.bounds, self.n_init, self.rng)

    # ------------------------------------------------------------ journaling
    def _begin_observability(self, n_workers: int, *, resumed: bool = False) -> None:
        """Open the root ``run`` span (closed again by :meth:`_package`)."""
        if self._run_span is None:
            self._run_span = self.obs.span(
                "run",
                algorithm=self.algorithm_name,
                problem=self.problem.name,
                n_workers=int(n_workers),
                resumed=bool(resumed),
            )
            self._run_span.__enter__()

    def _begin_run(self, n_workers: int) -> None:
        """Open the journal sink and write the ``run_start`` record."""
        self._begin_observability(n_workers)
        self.campaign.reissue_counts = {}
        self.campaign._pending_failure_action = None
        self._since_checkpoint = 0
        spec = self.journal
        if spec is None:
            self._journal, self._owns_journal = None, False
        elif hasattr(spec, "append"):
            self._journal, self._owns_journal = spec, False
        else:
            self._journal, self._owns_journal = JournalWriter(spec), True
        self._journal_event(
            {
                "type": "run_start",
                "journal_version": JOURNAL_VERSION,
                "algorithm": self.algorithm_name,
                "problem": self.problem.name,
                "n_workers": int(n_workers),
                "config": self._resume_config(),
                "rng_state": rng_state_to_dict(self.rng),
            }
        )

    def _journal_event(self, record: dict) -> None:
        if self._journal is not None:
            self._journal.append(record)

    def _journal_doe(self, design: np.ndarray) -> None:
        if self._journal is not None:
            self._journal.append(
                {
                    "type": "doe",
                    "design": [[float(v) for v in row] for row in np.asarray(design)],
                    "rng_state": rng_state_to_dict(self.rng),
                }
            )

    def _resume_config(self) -> dict:
        """Constructor kwargs that reproduce this driver at resume time.

        Together with the ``algorithm`` label (which encodes family, batch
        size, and strategy) this must round-trip through
        :func:`repro.core.easybo.make_algorithm` to an identically-configured
        driver.  Subclasses extend it with their own knobs.
        """
        return {
            "n_init": self.n_init,
            "max_evals": self.max_evals,
            "acq_candidates": self.acq_candidates,
            "acq_restarts": self.acq_restarts,
            "surrogate_update": self.session.surrogate_update,
            "surrogate": self.session.surrogate,
            "max_exact_n": self.session.max_exact_n,
            "n_inducing": self.session.n_inducing,
            "refit_every": self.session.refit_every,
            "checkpoint_every": self.checkpoint_every,
            "failure_policy": dataclasses.asdict(self.failure_policy),
        }

    def _submit(self, pool, x, *, batch: int | None = None, counts: bool = True) -> int:
        """Submit one point and journal the issue (with post-proposal state).

        The issue record carries the RNG state *after* every draw the
        proposal consumed plus a surrogate hyperparameter snapshot, so replay
        can continue from this exact boundary; ``counts=False`` marks budget-
        neutral re-issues of orphaned points.
        """
        with self.obs.span("dispatch") as span:
            index = pool.submit(x, batch=batch)
            span.annotate(index=int(index))
        self.obs.inc("driver.submits")
        if self._journal is not None:
            info = pool.task_info(index)
            self._journal.append(
                {
                    "type": "issue",
                    "index": int(index),
                    "worker": int(info["worker"]),
                    "x": [float(v) for v in np.asarray(x).ravel()],
                    "batch": None if batch is None else int(batch),
                    "issue_time": float(info["issue_time"]),
                    "lease": info["lease"],
                    "counts_budget": bool(counts),
                    "rng_state": rng_state_to_dict(self.rng),
                    "surrogate": self.session.snapshot(),
                }
            )
        return index

    def _wait(self, pool) -> Completion:
        """Block on ``pool.wait_next()`` under a ``wait`` span."""
        with self.obs.span("wait") as span:
            completion = pool.wait_next()
            span.annotate(
                index=int(completion.index), status=completion.result.status
            )
        self.obs.inc("driver.completions")
        return completion

    def _consume(self, pool, completion: Completion) -> bool:
        """Resolve one completion: reconcile orphans, absorb, journal.

        Orphaned completions (a worker whose lease expired with the point
        still in flight) follow ``failure_policy.on_orphan``: re-issue the
        point budget-neutrally (up to ``max_reissues`` per point, then fall
        back to imputation), impute like any failure, or drop it.
        """
        result = completion.result
        if result.status == STATUS_ORPHANED:
            if self.campaign.note_orphan(completion.x):
                self._journal_complete(pool, completion, "reissued", None)
                self._submit(pool, completion.x, batch=completion.batch, counts=False)
                return False
        added = self._absorb(completion)
        action, value = self.campaign.last_action
        self._journal_complete(pool, completion, action, value)
        self._maybe_checkpoint(pool)
        return added

    def _journal_complete(self, pool, completion: Completion, action, value) -> None:
        if self._journal is None:
            return
        record = EvalRecord(
            index=completion.index,
            worker=completion.worker,
            x=np.asarray(completion.x, dtype=float),
            fom=completion.result.fom,
            issue_time=completion.issue_time,
            finish_time=completion.finish_time,
            feasible=completion.result.feasible,
            batch=completion.batch,
            status=completion.result.status,
            error=completion.result.error,
            attempts=completion.attempts,
        )
        self._journal.append(
            {
                "type": "complete",
                "record": record.as_dict(),
                "action": action,
                "value": None if value is None else float(value),
                "clock": float(pool.now),
            }
        )

    def _maybe_checkpoint(self, pool) -> None:
        if self._journal is None or not self.checkpoint_every:
            return
        self._since_checkpoint += 1
        if self._since_checkpoint < self.checkpoint_every:
            return
        self._since_checkpoint = 0
        y = self.session.y
        self._journal.append(
            {
                "type": "checkpoint",
                "n_observations": int(len(y)),
                "y": [float(v) for v in y],
                "best_fom": float(y.max()) if len(y) else None,
                "clock": float(pool.now),
                "rng_state": rng_state_to_dict(self.rng),
            }
        )

    def _absorb(self, completion: Completion) -> bool:
        """Fold a finished evaluation into the surrogate dataset.

        Failed evaluations follow the failure policy: ``"impute"`` records a
        pessimistic FOM at the failed point (so the surrogate steers away
        from it without poisoning the GP), ``"drop"`` records nothing — the
        budget slot is spent and the next proposal sees an unchanged
        posterior.  Returns True when an observation was added, so
        subclasses can keep side datasets aligned with the session.
        """
        return self.campaign.absorb(completion.x, completion.result)

    def _imputed_fom(self) -> float:
        """Pessimistic stand-in FOM for a failed evaluation."""
        return self.campaign.imputed_fom()

    def _propose(self, acquisition, model=None) -> np.ndarray:
        """Maximize an acquisition on the unit cube; return a physical point."""
        return self.campaign.maximize(acquisition, model=model)

    def _standardized_best(self) -> float:
        """Incumbent best in the GP's standardized output scale."""
        return self.campaign.standardized_best()

    def _package(self, pool) -> RunResult:
        trace = pool.trace
        trace.surrogate_stats = self.session.stats
        tele_fn = getattr(pool, "telemetry", None)
        telemetry = tele_fn() if callable(tele_fn) else None
        trace.pool_telemetry = telemetry
        if trace.has_success:
            best = trace.best_record()
            best_x, best_fom = best.x.copy(), best.fom
        else:
            # Every single evaluation failed; report an empty incumbent
            # rather than crashing a run that survived to the end.
            best_x = np.full(self.problem.dim, np.nan)
            best_fom = float("-inf")
        metrics_snapshot = self._fold_metrics(trace, telemetry)
        result = RunResult(
            algorithm=self.algorithm_name,
            problem=self.problem.name,
            trace=trace,
            best_x=best_x,
            best_fom=best_fom,
            n_evaluations=len(trace),
            wall_clock=trace.makespan,
            n_failures=trace.n_failures,
            n_retries=trace.n_retries,
            surrogate_stats=self.session.stats,
            rng_state=rng_state_to_dict(self.rng),
            pool_telemetry=telemetry,
            metrics=metrics_snapshot,
            pending_policy=self.pending_policy,
            surrogate=self.session.surrogate,
        )
        self._journal_event(
            {
                "type": "run_end",
                "best_fom": best_fom,
                "n_evaluations": len(trace),
                "n_orphaned": trace.n_orphaned,
            }
        )
        if self._owns_journal and self._journal is not None:
            self._journal.close()
            self._journal = None
        if self._run_span is not None:
            self._run_span.__exit__(None, None, None)
            self._run_span = None
        return result

    def _fold_metrics(self, trace, telemetry) -> dict | None:
        """Derive replay-safe metrics once at packaging time.

        Counters with a durable source of truth (the trace, the surrogate
        stats, the pool telemetry) are *assigned* from it here rather than
        incremented live — a resumed run replays its journal into those
        sources, so the folded totals match the uninterrupted run without
        counting replayed events twice.
        """
        registry = self.obs.metrics
        if registry is None:
            return None
        registry.fold_surrogate_stats(self.session.stats)
        registry.fold_pool_telemetry(telemetry)
        registry.set_counter("driver.evaluations", len(trace))
        registry.set_counter("driver.failures", trace.n_failures)
        registry.set_counter("driver.retries", trace.n_retries)
        registry.set_counter("driver.orphans", trace.n_orphaned)
        registry.set_counter(
            "driver.reissues", sum(self._reissue_counts.values())
        )
        return registry.as_dict()

    def run(self) -> RunResult:  # pragma: no cover - interface
        raise NotImplementedError

    def _resume_drive(self, pool, state) -> RunResult:  # pragma: no cover
        """Continue a replayed run; implemented by each driver."""
        raise NotImplementedError


class SequentialBO(BODriverBase):
    """One-at-a-time BO with a pluggable acquisition rule.

    ``acquisition`` is one of:

    * ``"easybo"`` — the paper's randomized-weight rule (Eq. 8); this is
      EasyBO in sequential mode (Table I/II top blocks).
    * ``"ei"`` / ``"pi"`` — improvement-based baselines.
    * ``"lcb"`` / ``"ucb"`` — the optimistic baseline (identical here: the
      paper's LCB is the minimization spelling of UCB).
    """

    def __init__(
        self,
        problem: Problem,
        *,
        acquisition: str = "easybo",
        lam: float = EASYBO_LAMBDA,
        ucb_kappa: float = 2.0,
        ei_xi: float = 0.0,
        **kwargs,
    ):
        super().__init__(problem, **kwargs)
        acquisition = acquisition.lower()
        if acquisition not in ("easybo", "ei", "pi", "lcb", "ucb"):
            raise ValueError(f"unknown acquisition {acquisition!r}")
        self.acquisition = acquisition
        self.lam = float(lam)
        self.ucb_kappa = float(ucb_kappa)
        self.ei_xi = float(ei_xi)
        self.algorithm_name = {"easybo": "EasyBO", "ei": "EI", "pi": "PI",
                               "lcb": "LCB", "ucb": "UCB"}[acquisition]
        self.campaign.strategy = SequentialStrategy(
            acquisition, lam=self.lam, ucb_kappa=self.ucb_kappa, ei_xi=self.ei_xi
        )
        self.campaign.algorithm = self.algorithm_name

    def _make_acquisition(self):
        return self.campaign.strategy.make_acquisition(self.campaign)

    def _resume_config(self) -> dict:
        config = super()._resume_config()
        config.update(lam=self.lam, ucb_kappa=self.ucb_kappa, ei_xi=self.ei_xi)
        return config

    def run(self) -> RunResult:
        pool = self._make_pool(1)
        try:
            self._begin_run(1)
            design = self._initial_design()
            self._journal_doe(design)
            self.campaign.begin(design)
            return self._drive(pool)
        finally:
            shutdown_pool(pool)

    def _resume_drive(self, pool, state) -> RunResult:
        design = state.design
        if design is None:
            # Crashed before the DoE record was durable: redraw it (the RNG
            # was restored to the pre-draw state, so it is the same design).
            design = self._initial_design()
            self._journal_doe(design)
        self.campaign.restore(
            design=design, issued=state.issued, pending=pool.pending_points()
        )
        return self._drive(pool)

    def _drive(self, pool) -> RunResult:
        """One-at-a-time ask/tell loop, resumable at any boundary.

        Identical trajectory to the classic submit/absorb interleaving: with
        one worker the pool alternates strictly between busy (consume the
        completion) and idle (ask the campaign for the next point).
        """
        while True:
            if pool.busy_count:
                self._consume(pool, self._wait(pool))
            elif self.campaign.exhausted:
                break
            else:
                self._submit(pool, self.campaign.ask())
        return self._package(pool)
