"""Failure-aware evaluation: policies, retry execution, and fault injection.

Real analog flows lose simulator jobs routinely — licenses drop, netlists
fail to converge, queues hang.  The paper's asynchronous loop (Alg. 1) only
pays off if a failed evaluation costs one worker-slot, not the whole run.
This module centralizes everything both worker pools and all drivers share
about failure handling:

* :class:`FailurePolicy` — what to do when an evaluation crashes, returns a
  non-finite FOM, or exceeds its timeout: how many times to retry (with
  backoff), and whether the driver should impute a pessimistic FOM for the
  point or drop it and re-propose.
* :class:`SimulationError` — the exception simulators should raise for a
  recoverable failure; it can carry the simulated seconds burned before the
  crash so the virtual clock stays honest.
* :func:`run_with_policy` — the retry loop both pools use.  It never raises:
  every outcome, however poisoned, comes back as an
  :class:`~repro.core.problem.EvaluationResult` with an explicit status.
* :class:`FaultInjectionProblem` — a deterministic, seedable wrapper that
  injects crashes, NaN outputs, and slowdowns into any problem; the fault
  tests and ``benchmarks/bench_faults.py`` are built on it.

The division of labour: pools *contain* failures (retry, time out, record),
drivers *interpret* them (impute or drop, per the policy).  The surrogate
never sees a non-finite observation — :meth:`SurrogateSession.add` enforces
that independently.
"""

from __future__ import annotations

import dataclasses
import time as _time

import numpy as np

from repro.core.problem import (
    STATUS_CRASHED,
    STATUS_NAN,
    STATUS_OK,
    STATUS_TIMEOUT,
    EvaluationResult,
    Problem,
)
from repro.utils.rng import as_generator

__all__ = [
    "FailurePolicy",
    "SimulationError",
    "ProcessKilled",
    "run_with_policy",
    "FaultInjectionProblem",
    "KillSwitchProblem",
    "HangProblem",
    "KillSwitchJournal",
]

#: Driver-side reactions to an evaluation that stayed failed after retries.
FAILURE_ACTIONS = ("impute", "drop")

#: Reactions to an *orphaned* point — one issued before a crash (or to a
#: worker whose lease expired) whose result will never arrive.
ORPHAN_ACTIONS = ("reissue", "impute", "drop")


class ProcessKilled(BaseException):
    """A simulated hard process death for chaos testing.

    Deliberately derives from :class:`BaseException` so the fault-containment
    retry loop (:func:`run_with_policy`, which catches ``Exception``) cannot
    absorb it — exactly like a real SIGKILL, it tears down the whole run and
    can only be observed from outside.
    """


class SimulationError(RuntimeError):
    """A recoverable simulator failure.

    Parameters
    ----------
    message:
        Human-readable cause, recorded in the trace.
    cost:
        Simulated seconds the worker burned before the crash (virtual-clock
        pools charge this instead of :attr:`FailurePolicy.failure_cost`).
    """

    def __init__(self, message: str = "simulation failed", *, cost: float | None = None):
        super().__init__(message)
        self.cost = cost


@dataclasses.dataclass(frozen=True)
class FailurePolicy:
    """How pools and drivers respond to failed evaluations.

    Attributes
    ----------
    max_retries:
        Crashed/NaN evaluations are re-run up to this many extra times on
        the same worker before being declared failed.  Timeouts are never
        retried in place (the worker is needed back).
    retry_backoff:
        Seconds to wait before retry attempt ``k`` (charged as
        ``retry_backoff * k``): simulated seconds on the virtual clock,
        real sleep on the thread pool.
    timeout:
        Per-evaluation time limit in seconds (simulated cost for the
        virtual pool, wall-clock for the thread pool).  ``None`` disables.
    on_failure:
        ``"impute"`` — the driver records a pessimistic FOM at the failed
        point so the surrogate avoids it (Volk et al., 2024 style);
        ``"drop"`` — the point never reaches the surrogate and the budget
        slot is simply spent (the driver re-proposes from an unchanged
        posterior).
    impute_value:
        Fixed FOM to impute; ``None`` derives a pessimistic value from the
        data (worst observed minus ``impute_margin`` times the observed
        range).
    impute_margin:
        Margin factor for the derived pessimistic value.
    failure_cost:
        Simulated seconds charged for a crash whose exception carries no
        cost of its own.
    on_orphan:
        What to do with an in-flight point whose worker died (found pending
        in the journal at resume, or past its lease at ``wait_next``):
        ``"reissue"`` re-evaluates it (up to ``max_reissues`` times per
        point), ``"impute"`` records a pessimistic FOM like ``on_failure``,
        ``"drop"`` spends the budget slot and counts the orphan.
    max_reissues:
        Cap on re-issues per orphaned point before falling back to impute.
    lease_slack:
        Lease deadline multiplier: a point issued when completed evaluations
        average ``c`` seconds gets a lease of ``lease_slack * c`` seconds
        (``None`` disables leases).
    """

    max_retries: int = 0
    retry_backoff: float = 0.0
    timeout: float | None = None
    on_failure: str = "impute"
    impute_value: float | None = None
    impute_margin: float = 1.0
    failure_cost: float = 0.0
    on_orphan: str = "reissue"
    max_reissues: int = 1
    lease_slack: float | None = None

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be non-negative")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if self.on_failure not in FAILURE_ACTIONS:
            raise ValueError(
                f"on_failure must be one of {FAILURE_ACTIONS}, got {self.on_failure!r}"
            )
        if self.failure_cost < 0:
            raise ValueError("failure_cost must be non-negative")
        if self.on_orphan not in ORPHAN_ACTIONS:
            raise ValueError(
                f"on_orphan must be one of {ORPHAN_ACTIONS}, got {self.on_orphan!r}"
            )
        if self.max_reissues < 0:
            raise ValueError("max_reissues must be non-negative")
        if self.lease_slack is not None and self.lease_slack <= 0:
            raise ValueError("lease_slack must be positive (or None)")


def _sanitize(result) -> EvaluationResult:
    """Coerce whatever ``problem.evaluate`` returned into a safe result.

    A simulator that hands back a NaN/inf FOM or cost (bypassing
    :class:`EvaluationResult` validation by mutating fields) must surface as
    an explicit failure, never as a poisoned observation.
    """
    if not isinstance(result, EvaluationResult):
        return EvaluationResult.failed(
            f"evaluate returned {type(result).__name__}, not EvaluationResult"
        )
    if not np.isfinite(result.cost) or result.cost < 0:
        return EvaluationResult.failed(
            f"non-finite or negative cost {result.cost!r}", status=STATUS_NAN
        )
    if result.status == STATUS_OK and not np.isfinite(result.fom):
        return EvaluationResult.failed(
            f"non-finite fom {result.fom!r}",
            status=STATUS_NAN,
            cost=result.cost,
            metrics=dict(result.metrics),
        )
    return result


def run_with_policy(
    problem,
    x: np.ndarray,
    policy: FailurePolicy,
    *,
    sleep=None,
    cost_timeout: bool = False,
) -> tuple[EvaluationResult, int, float]:
    """Evaluate ``x`` under ``policy``; never raises.

    Returns ``(result, attempts, elapsed)`` where ``elapsed`` is the total
    simulated seconds the worker was occupied: every attempt's cost plus
    backoff gaps.  Crashes and NaN outcomes are retried up to
    ``policy.max_retries`` times; timeouts are terminal.

    Parameters
    ----------
    sleep:
        Real backoff function (``time.sleep`` on the thread pool); ``None``
        on the virtual pool, where backoff only advances the simulated clock.
    cost_timeout:
        Enforce ``policy.timeout`` against ``result.cost`` (virtual-clock
        semantics).  The thread pool enforces its timeout on real wall-clock
        in ``wait_next`` instead.
    """
    elapsed = 0.0
    attempts = 0
    failure = EvaluationResult.failed("not attempted")
    while attempts <= policy.max_retries:
        attempts += 1
        try:
            result = _sanitize(problem.evaluate(x))
        except Exception as exc:  # noqa: BLE001 — the whole point is containment
            burned = getattr(exc, "cost", None)
            burned = policy.failure_cost if burned is None else float(burned)
            if cost_timeout and policy.timeout is not None and burned > policy.timeout:
                elapsed += policy.timeout
                return (
                    EvaluationResult.failed(
                        f"timed out after {policy.timeout:g}s "
                        f"(then {type(exc).__name__}: {exc})",
                        status=STATUS_TIMEOUT,
                        cost=policy.timeout,
                    ),
                    attempts,
                    elapsed,
                )
            elapsed += burned
            failure = EvaluationResult.failed(
                f"{type(exc).__name__}: {exc}", status=STATUS_CRASHED, cost=burned
            )
        else:
            if cost_timeout and policy.timeout is not None and result.cost > policy.timeout:
                # The job would still be running at the deadline: charge the
                # timeout, hand the worker back, never retry in place.
                elapsed += policy.timeout
                return (
                    EvaluationResult.failed(
                        f"timed out after {policy.timeout:g}s "
                        f"(evaluation needed {result.cost:g}s)",
                        status=STATUS_TIMEOUT,
                        cost=policy.timeout,
                    ),
                    attempts,
                    elapsed,
                )
            elapsed += result.cost
            if result.ok:
                return result, attempts, elapsed
            failure = result
        if attempts <= policy.max_retries:
            backoff = policy.retry_backoff * attempts
            elapsed += backoff
            if sleep is not None and backoff > 0:
                sleep(backoff)
    return failure, attempts, elapsed


class FaultInjectionProblem(Problem):
    """Deterministic, seedable fault injection around any problem.

    Each evaluation draws once from its own RNG stream and, per the
    configured rates, either raises :class:`SimulationError` (crash), returns
    a result whose FOM has been poisoned to NaN (bad simulator output), or
    inflates the evaluation's cost by ``slowdown_factor`` (a job that would
    hang past any sensible timeout).  Outcomes are a pure function of the
    seed and the call sequence, so fault scenarios replay exactly.

    Parameters
    ----------
    problem:
        The wrapped problem.
    crash_rate / nan_rate / slowdown_rate:
        Per-evaluation probabilities of each fault (must sum to <= 1).
    slowdown_factor:
        Multiplier applied to the evaluation's cost on a slowdown.
    crash_cost:
        Simulated seconds a crash burns before failing.
    real_slowdown:
        Extra *real* seconds to sleep on a slowdown — exercises the thread
        pool's wall-clock timeout.
    rng:
        Seed or generator for the fault stream.
    """

    def __init__(
        self,
        problem: Problem,
        *,
        crash_rate: float = 0.0,
        nan_rate: float = 0.0,
        slowdown_rate: float = 0.0,
        slowdown_factor: float = 10.0,
        crash_cost: float = 0.0,
        real_slowdown: float = 0.0,
        rng=None,
    ):
        rates = (crash_rate, nan_rate, slowdown_rate)
        if any(r < 0 for r in rates) or sum(rates) > 1.0 + 1e-12:
            raise ValueError("fault rates must be non-negative and sum to <= 1")
        if slowdown_factor < 1:
            raise ValueError("slowdown_factor must be >= 1")
        self.problem = problem
        self.crash_rate = float(crash_rate)
        self.nan_rate = float(nan_rate)
        self.slowdown_rate = float(slowdown_rate)
        self.slowdown_factor = float(slowdown_factor)
        self.crash_cost = float(crash_cost)
        self.real_slowdown = float(real_slowdown)
        self.rng = as_generator(rng)
        self.name = f"faulty({problem.name})"
        self.n_calls = 0
        self.n_crashes = 0
        self.n_nans = 0
        self.n_slowdowns = 0

    @property
    def bounds(self) -> np.ndarray:
        return self.problem.bounds

    @property
    def n_faults(self) -> int:
        return self.n_crashes + self.n_nans + self.n_slowdowns

    def evaluate(self, x: np.ndarray) -> EvaluationResult:
        self.n_calls += 1
        u = float(self.rng.uniform())
        if u < self.crash_rate:
            self.n_crashes += 1
            raise SimulationError("injected simulator crash", cost=self.crash_cost)
        result = self.problem.evaluate(x)
        if u < self.crash_rate + self.nan_rate:
            self.n_nans += 1
            # Poison the finished result the way a buggy simulator would:
            # mutate past construction-time validation.
            result.fom = float("nan")
            return result
        if u < self.crash_rate + self.nan_rate + self.slowdown_rate:
            self.n_slowdowns += 1
            if self.real_slowdown > 0:
                _time.sleep(self.real_slowdown)
            return dataclasses.replace(result, cost=result.cost * self.slowdown_factor)
        return result


class KillSwitchProblem(Problem):
    """Kill the whole process on the ``kill_at``-th evaluation.

    Unlike :class:`FaultInjectionProblem` (whose crashes are contained by the
    retry loop), this raises :class:`ProcessKilled` — a ``BaseException`` —
    from inside ``evaluate``, modelling the driver process dying while a
    simulation is in flight.  Chaos tests catch it at top level and then
    resume from the journal.
    """

    def __init__(self, problem: Problem, *, kill_at: int):
        if kill_at < 1:
            raise ValueError("kill_at must be >= 1")
        self.problem = problem
        self.kill_at = int(kill_at)
        self.n_calls = 0
        self.name = problem.name

    @property
    def bounds(self) -> np.ndarray:
        return self.problem.bounds

    def evaluate(self, x: np.ndarray) -> EvaluationResult:
        self.n_calls += 1
        if self.n_calls == self.kill_at:
            raise ProcessKilled(f"process killed at evaluation {self.n_calls}")
        return self.problem.evaluate(x)


class HangProblem(Problem):
    """Freeze (real ``time.sleep``) on chosen evaluations.

    Unlike the simulated-clock slowdowns of :class:`FaultInjectionProblem`,
    this wrapper genuinely stops responding for ``hang_seconds`` of wall
    time — the deterministic stand-in for a wedged SPICE process.  It
    exercises the supervision paths that only exist against real workers:
    a thread pool's deadline expiry and a process pool's timeout-kill /
    heartbeat machinery.  Two triggers:

    ``hang_at``
        Hang on the N-th ``evaluate`` call of this instance.  Call counts
        are per-process, so this is for in-process pools (virtual/thread).
    ``hang_above``
        Hang whenever ``x[0] >= hang_above``.  The trigger travels with
        the *point*, so it stays deterministic when each worker process
        holds its own copy of the problem.

    The wrapper holds no closures; with a picklable inner problem it
    pickles cleanly into worker processes (named-spec fallbacks would
    rebuild the inner problem *without* the hang — see
    :func:`repro.distributed.protocol.problem_spec`).
    """

    def __init__(self, problem: Problem, *, hang_seconds: float,
                 hang_at: int | None = None, hang_above: float | None = None):
        if hang_seconds <= 0:
            raise ValueError("hang_seconds must be positive")
        if hang_at is None and hang_above is None:
            raise ValueError("need a trigger: hang_at and/or hang_above")
        if hang_at is not None and hang_at < 1:
            raise ValueError("hang_at must be >= 1")
        self.problem = problem
        self.hang_seconds = float(hang_seconds)
        self.hang_at = None if hang_at is None else int(hang_at)
        self.hang_above = None if hang_above is None else float(hang_above)
        self.n_calls = 0
        self.name = problem.name

    @property
    def bounds(self) -> np.ndarray:
        return self.problem.bounds

    def evaluate(self, x: np.ndarray) -> EvaluationResult:
        self.n_calls += 1
        triggered = (self.hang_at is not None and self.n_calls == self.hang_at) or (
            self.hang_above is not None and float(x[0]) >= self.hang_above
        )
        if triggered:
            _time.sleep(self.hang_seconds)
        return self.problem.evaluate(x)


class KillSwitchJournal:
    """Journal wrapper that kills the process before the ``kill_at``-th append.

    Wraps a real :class:`~repro.core.journal.JournalWriter` and raises
    :class:`ProcessKilled` *before* writing record number ``kill_at`` —
    modelling a crash between the state transition and its durable record.
    Because the kill fires at the append boundary, sweeping ``kill_at`` over
    the event count exercises a crash between every pair of consecutive
    journal records.
    """

    def __init__(self, journal, *, kill_at: int):
        if kill_at < 1:
            raise ValueError("kill_at must be >= 1")
        self.journal = journal
        self.kill_at = int(kill_at)

    @property
    def path(self):
        return self.journal.path

    @property
    def n_appends(self) -> int:
        return self.journal.n_appends

    def append(self, record: dict) -> None:
        if self.journal.n_appends + 1 >= self.kill_at:
            raise ProcessKilled(
                f"process killed before journal append {self.journal.n_appends + 1}"
            )
        self.journal.append(record)

    def close(self) -> None:
        self.journal.close()
