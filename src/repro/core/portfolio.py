"""GP-Hedge acquisition portfolio (the paper's reference [31]).

The paper notes that "a portfolio of several acquisition functions is also
possible" [Hoffman, Brochu & de Freitas, UAI 2011].  This driver implements
GP-Hedge on top of the sequential loop: each iteration every portfolio member
nominates a candidate, one nomination is played with probability proportional
to ``exp(eta * gain)``, and every member's gain is updated afterwards by the
posterior mean at *its own* nominee.
"""

from __future__ import annotations

import numpy as np

from repro.core.acquisition import (
    ExpectedImprovement,
    ProbabilityOfImprovement,
    UpperConfidenceBound,
)
from repro.core.bo import BODriverBase, shutdown_pool
from repro.core.results import RunResult

__all__ = ["PortfolioBO"]


class PortfolioBO(BODriverBase):
    """Sequential GP-Hedge over {EI, PI, UCB}.

    Parameters
    ----------
    eta:
        Hedge learning rate; higher trusts past gains more aggressively.
    ucb_kappa / ei_xi:
        Member-acquisition parameters.
    """

    algorithm_name = "GP-Hedge"

    def __init__(self, problem, *, eta: float = 1.0, ucb_kappa: float = 2.0,
                 ei_xi: float = 0.0, **kwargs):
        super().__init__(problem, **kwargs)
        if eta <= 0:
            raise ValueError("eta must be positive")
        self.eta = float(eta)
        self.ucb_kappa = float(ucb_kappa)
        self.ei_xi = float(ei_xi)
        self.member_names = ("EI", "PI", "UCB")
        self.gains = np.zeros(len(self.member_names))
        #: How many times each member's nominee was played (diagnostics).
        self.plays = dict.fromkeys(self.member_names, 0)

    def _members(self):
        best = self._standardized_best()
        return (
            ExpectedImprovement(best, xi=self.ei_xi),
            ProbabilityOfImprovement(best, xi=self.ei_xi),
            UpperConfidenceBound(self.ucb_kappa),
        )

    def _probabilities(self) -> np.ndarray:
        logits = self.eta * (self.gains - self.gains.max())
        weights = np.exp(logits)
        return weights / weights.sum()

    def run(self) -> RunResult:
        pool = self._make_pool(1)
        try:
            return self._drive(pool)
        finally:
            shutdown_pool(pool)

    def _drive(self, pool) -> RunResult:
        for x in self._initial_design():
            pool.submit(x)
            self._absorb(pool.wait_next())
        evaluations = self.n_init
        while evaluations < self.max_evals:
            if self.session.n_observations < 2:
                # Dropped failures can starve the GP; explore uniformly
                # (no Hedge update — no nominees were scored).
                from repro.core.doe import random_design

                pool.submit(random_design(self.problem.bounds, 1, self.rng)[0])
                self._absorb(pool.wait_next())
                evaluations += 1
                continue
            model = self.session.refit()
            nominees = [self._propose(acq, model=model) for acq in self._members()]
            probs = self._probabilities()
            choice = int(self.rng.choice(len(nominees), p=probs))
            self.plays[self.member_names[choice]] += 1
            pool.submit(nominees[choice])
            self._absorb(pool.wait_next())
            evaluations += 1
            # Hedge update: reward every member by the *current* posterior
            # mean at its nominee (Hoffman et al., eq. 2).
            model = self.session.require_model()
            U = self.session.transform.to_unit(np.vstack(nominees))
            self.gains += model.predict(U, return_std=False)
        return self._package(pool)
