"""Pending-policy tournament: policies x circuits x batches x fault rates.

The head-to-head the ROADMAP asks for: run every pending-point policy
(:mod:`repro.core.pending`) over a grid of circuits, batch sizes, and
injected fault rates, with **paired seeds** — each (circuit, batch,
fault-rate, seed) cell uses the identical driver seed and fault stream for
every policy, so per-cell regret differences measure the policy and nothing
else.  The result is a ranked table (mean/median simple regret) plus paired
regret comparisons against the paper's Eq. 9 hallucination baseline.

Everything is a pure function of the scale definition: rerunning a
tournament reproduces it bit-for-bit.  Used by the ``tournament`` CLI verb
(``python -m repro tournament``) and ``benchmarks/bench_policy_tournament.py``.
"""

from __future__ import annotations

import dataclasses
import statistics
import zlib

from repro.core.faults import FaultInjectionProblem
from repro.core.pending import PENDING_POLICIES
from repro.utils.tables import format_table

__all__ = [
    "TournamentScale",
    "SCALES",
    "CellResult",
    "POLICY_LABELS",
    "run_tournament",
    "rank_table",
    "paired_comparisons",
    "render_report",
    "check_tournament",
    "check_hallucinate_matches_golden",
]

#: Algorithm label base per policy (the labels round-trip through
#: ``make_algorithm`` and carry the policy on resume).
POLICY_LABELS = {
    "hallucinate": "EasyBO",
    "lp": "EasyBO-LP",
    "pessimistic": "EasyBO-PESS",
    "none": "EasyBO-A",
}


@dataclasses.dataclass(frozen=True)
class TournamentScale:
    """One tournament grid definition; every field is part of the seed."""

    name: str
    policies: tuple
    circuits: tuple
    batch_sizes: tuple
    fault_rates: tuple
    n_seeds: int
    n_init: int
    max_evals: int
    acq_candidates: int = 64
    acq_restarts: int = 1


SCALES = {
    # CI floor: 2 policies x 1 circuit, seeded; asserts the harness runs and
    # the hallucinate policy still matches its committed golden.
    "smoke": TournamentScale(
        "smoke",
        policies=("hallucinate", "none"),
        circuits=("branin",),
        batch_sizes=(3,),
        fault_rates=(0.0,),
        n_seeds=2,
        n_init=4,
        max_evals=10,
    ),
    # The acceptance grid: every policy, >= 2 circuits x 2 batches x 2 fault
    # rates, 3 paired seeds per cell (96 runs).
    "reduced": TournamentScale(
        "reduced",
        policies=PENDING_POLICIES,
        circuits=("branin", "sphere2"),
        batch_sizes=(3, 5),
        fault_rates=(0.0, 0.2),
        n_seeds=3,
        n_init=5,
        max_evals=16,
    ),
    "paper": TournamentScale(
        "paper",
        policies=PENDING_POLICIES,
        circuits=("branin", "sphere2", "hartmann6"),
        batch_sizes=(3, 5, 10),
        fault_rates=(0.0, 0.1, 0.3),
        n_seeds=10,
        n_init=10,
        max_evals=40,
        acq_candidates=256,
    ),
}


@dataclasses.dataclass(frozen=True)
class CellResult:
    """One seeded run of one policy on one grid cell."""

    policy: str
    circuit: str
    batch: int
    fault_rate: float
    seed: int
    best_fom: float
    regret: float
    n_evaluations: int
    n_failures: int
    wall_clock: float

    @property
    def cell_key(self):
        """Pairing key — identical across policies for paired comparisons."""
        return (self.circuit, self.batch, self.fault_rate, self.seed)


def _fault_seed(circuit: str, batch: int, fault_rate: float, seed: int) -> int:
    """Deterministic fault-stream seed, identical for every policy in a cell."""
    return zlib.crc32(f"{circuit}|{batch}|{fault_rate}|{seed}".encode())


def run_cell(
    policy: str,
    circuit: str,
    batch: int,
    fault_rate: float,
    seed: int,
    scale: TournamentScale,
) -> CellResult:
    """Run one policy on one (circuit, batch, fault-rate, seed) cell."""
    from repro.core.easybo import make_algorithm
    from repro.core.recovery import resolve_problem

    base = resolve_problem(circuit)
    problem = base
    if fault_rate > 0:
        # Split the rate between crashes and NaN results; the stream is a
        # pure function of the cell, so every policy faces the same faults.
        problem = FaultInjectionProblem(
            base,
            crash_rate=fault_rate / 2,
            nan_rate=fault_rate / 2,
            rng=_fault_seed(circuit, batch, fault_rate, seed),
        )
    label = f"{POLICY_LABELS[policy]}-{batch}"
    algorithm = make_algorithm(
        label,
        problem,
        rng=seed,
        n_init=scale.n_init,
        max_evals=scale.max_evals,
        acq_candidates=scale.acq_candidates,
        acq_restarts=scale.acq_restarts,
    )
    result = algorithm.run()
    return CellResult(
        policy=policy,
        circuit=circuit,
        batch=batch,
        fault_rate=fault_rate,
        seed=seed,
        best_fom=float(result.best_fom),
        regret=float(base.regret(result.best_fom)),
        n_evaluations=int(result.n_evaluations),
        n_failures=int(result.n_failures),
        wall_clock=float(result.wall_clock),
    )


def run_tournament(scale: TournamentScale, *, progress=None) -> list[CellResult]:
    """Run the whole grid; deterministic given the scale definition.

    ``progress`` is an optional callable receiving (completed, total,
    last-cell) after every run — the CLI uses it for a live line.
    """
    cells = [
        (policy, circuit, batch, fault_rate, seed)
        for circuit in scale.circuits
        for batch in scale.batch_sizes
        for fault_rate in scale.fault_rates
        for seed in range(scale.n_seeds)
        for policy in scale.policies
    ]
    results: list[CellResult] = []
    for i, spec in enumerate(cells):
        result = run_cell(*spec, scale)
        results.append(result)
        if progress is not None:
            progress(i + 1, len(cells), result)
    return results


# ------------------------------------------------------------------ reports
def _by_policy(results) -> dict[str, list[CellResult]]:
    grouped: dict[str, list[CellResult]] = {}
    for r in results:
        grouped.setdefault(r.policy, []).append(r)
    return grouped


def paired_comparisons(
    results, *, baseline: str = "hallucinate"
) -> dict[str, dict]:
    """Paired-seed regret stats of every policy against ``baseline``.

    Cells are matched on (circuit, batch, fault_rate, seed); for each policy
    the returned stats are over ``regret(policy) - regret(baseline)`` on the
    matched cells: negative means the policy beat the baseline there.
    """
    grouped = _by_policy(results)
    base_cells = {r.cell_key: r for r in grouped.get(baseline, ())}
    out: dict[str, dict] = {}
    for policy, cells in grouped.items():
        if policy == baseline:
            continue
        diffs = [
            r.regret - base_cells[r.cell_key].regret
            for r in cells
            if r.cell_key in base_cells
        ]
        if not diffs:
            continue
        out[policy] = {
            "n": len(diffs),
            "mean_diff": statistics.fmean(diffs),
            "wins": sum(1 for d in diffs if d < 0),
            "losses": sum(1 for d in diffs if d > 0),
            "ties": sum(1 for d in diffs if d == 0),
        }
    return out


def rank_table(results, *, baseline: str = "hallucinate") -> list[dict]:
    """Ranked per-policy summary rows, best mean regret first."""
    grouped = _by_policy(results)
    paired = paired_comparisons(results, baseline=baseline)
    rows = []
    for policy, cells in grouped.items():
        regrets = [r.regret for r in cells]
        row = {
            "policy": policy,
            "n_runs": len(cells),
            "mean_regret": statistics.fmean(regrets),
            "median_regret": statistics.median(regrets),
            "mean_failures": statistics.fmean([r.n_failures for r in cells]),
        }
        versus = paired.get(policy)
        if policy == baseline:
            row["vs_baseline"] = "baseline"
        elif versus is None:
            row["vs_baseline"] = "-"
        else:
            row["vs_baseline"] = (
                f"{versus['mean_diff']:+.3g} "
                f"({versus['wins']}W/{versus['losses']}L/{versus['ties']}T)"
            )
        rows.append(row)
    rows.sort(key=lambda r: r["mean_regret"])
    for rank, row in enumerate(rows, start=1):
        row["rank"] = rank
    return rows


def render_report(scale: TournamentScale, results) -> str:
    """Human-readable ranking table for the CLI / bench output."""
    rows = [
        [
            row["rank"],
            row["policy"],
            row["n_runs"],
            f"{row['mean_regret']:.4g}",
            f"{row['median_regret']:.4g}",
            f"{row['mean_failures']:.2f}",
            row["vs_baseline"],
        ]
        for row in rank_table(results)
    ]
    grid = (
        f"{len(scale.policies)} policies x {len(scale.circuits)} circuits x "
        f"{len(scale.batch_sizes)} batches x {len(scale.fault_rates)} fault "
        f"rates x {scale.n_seeds} seeds"
    )
    return format_table(
        ["rank", "policy", "runs", "mean regret", "median", "mean fails",
         "paired dregret vs hallucinate"],
        rows,
        title=f"pending-policy tournament [{scale.name}]: {grid}",
    )


# ------------------------------------------------------------------- checks
def check_hallucinate_matches_golden() -> None:
    """Assert ``pending_policy="hallucinate"`` is the legacy pipeline.

    Reruns the committed ``easybo-async-branin`` golden scenario (EasyBO-3
    on branin, seed 7, full surrogate mode) twice — once through the legacy
    ``penalized=True`` spelling, once with an explicit
    ``pending_policy="hallucinate"`` — and asserts the trajectories are
    identical record-for-record, bit-for-bit.  When the committed fixture
    ``tests/golden/easybo-async-branin.json`` is reachable from the working
    directory it is compared byte-for-byte as well.
    """
    import json
    import pathlib

    from repro.circuits import branin
    from repro.core.easybo import make_algorithm

    def run(**extra):
        algorithm = make_algorithm(
            "EasyBO-3",
            branin(),
            rng=7,
            n_init=5,
            max_evals=12,
            acq_candidates=128,
            acq_restarts=1,
            surrogate_update="full",
            refit_every=1,
            **extra,
        )
        return algorithm.run()

    def payload(result) -> dict:
        # Mirrors tests/golden/regenerate.py:trajectory_payload for the
        # easybo-async-branin scenario, so the rendering below is
        # byte-comparable with the committed fixture.
        return {
            "scenario": "easybo-async-branin",
            "algorithm": result.algorithm,
            "problem": result.problem,
            "seed": 7,
            "n_evaluations": result.n_evaluations,
            "best_fom": result.best_fom,
            "records": [
                {
                    "index": r.index,
                    "worker": r.worker,
                    "batch": r.batch,
                    "x": [float(v) for v in r.x],
                    "fom": r.fom,
                    "issue_time": r.issue_time,
                    "finish_time": r.finish_time,
                    "status": r.status,
                }
                for r in result.trace.records
            ],
        }

    legacy = payload(run())
    explicit = payload(run(pending_policy="hallucinate"))
    assert explicit == legacy, (
        "pending_policy='hallucinate' diverged from the legacy penalized "
        "pipeline on the easybo-async-branin scenario"
    )
    fixture = pathlib.Path("tests/golden/easybo-async-branin.json")
    if fixture.is_file():
        committed = fixture.read_text(encoding="utf-8")
        rendered = json.dumps(explicit, indent=2, sort_keys=True) + "\n"
        assert rendered == committed, (
            "hallucinate policy no longer matches the committed golden "
            f"{fixture} byte-for-byte"
        )


def check_tournament(scale: TournamentScale, results) -> None:
    """Assert the harness ran the full grid and is seed-reproducible."""
    expected = (
        len(scale.policies) * len(scale.circuits) * len(scale.batch_sizes)
        * len(scale.fault_rates) * scale.n_seeds
    )
    assert len(results) == expected, (
        f"expected {expected} cells, ran {len(results)}"
    )
    for r in results:
        assert r.n_evaluations == scale.max_evals, (
            f"cell {r} spent {r.n_evaluations} != {scale.max_evals} budget"
        )
    # Paired seeds: every policy saw exactly the same matched cells.
    keysets = {
        policy: {r.cell_key for r in cells}
        for policy, cells in _by_policy(results).items()
    }
    reference = next(iter(keysets.values()))
    assert all(keys == reference for keys in keysets.values()), (
        "policies ran on mismatched cell grids; paired comparison impossible"
    )
    # Reproducibility: rerunning one cell gives the identical result.
    first = results[0]
    rerun = run_cell(
        first.policy, first.circuit, first.batch, first.fault_rate,
        first.seed, scale,
    )
    assert rerun == first, f"cell rerun diverged: {rerun} != {first}"
    check_hallucinate_matches_golden()
