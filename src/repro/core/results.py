"""Run results and multi-repetition summaries.

The paper reports each algorithm as Best/Worst/Mean/Std of the final FOM over
20 repetitions plus the total simulation time; :func:`summarize_runs` computes
exactly those columns from a list of :class:`RunResult`.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.sched.trace import ExecutionTrace, PoolTelemetry, SurrogateStats
from repro.utils.tables import format_duration

__all__ = ["RunResult", "RunSummary", "summarize_runs"]


@dataclasses.dataclass
class RunResult:
    """Outcome of one optimization run.

    ``n_evaluations`` counts every issued evaluation, failed ones included
    (the budget they consumed is real); ``n_failures`` and ``n_retries``
    break out how many of those failed outright and how many extra attempts
    the retry policy spent.  ``surrogate_stats`` carries the surrogate's
    linear-algebra counters (factorizations, incremental updates, PD-loss
    fallbacks, per-event seconds); it is ``None`` for model-free algorithms.
    """

    algorithm: str
    problem: str
    trace: ExecutionTrace
    best_x: np.ndarray
    best_fom: float
    n_evaluations: int
    wall_clock: float  # simulated (or real) seconds spent on evaluation
    n_failures: int = 0
    n_retries: int = 0
    surrogate_stats: SurrogateStats | None = None
    #: Final ``np.random.Generator`` bit-generator state (JSON-safe dict, see
    #: :func:`repro.utils.rng.rng_state_to_dict`); lets a follow-up run
    #: continue this run's random stream exactly.  ``None`` for runs loaded
    #: from pre-v4 files and for drivers that do not record it.
    rng_state: dict | None = None
    #: Operational counters of the evaluation pool that ran this run —
    #: backend, per-worker utilization, queue waits, respawn/heartbeat/
    #: timeout counts (:class:`~repro.sched.trace.PoolTelemetry`).  ``None``
    #: for runs loaded from pre-v5 files.
    pool_telemetry: PoolTelemetry | None = None
    #: Final :class:`~repro.obs.MetricsRegistry` snapshot (counters / gauges
    #: / histograms as a plain dict, see ``MetricsRegistry.as_dict``).
    #: ``None`` when the run was not started with ``metrics=`` and for runs
    #: loaded from pre-v6 files.
    metrics: dict | None = None
    #: Pending-point policy the asynchronous driver ran under (a name from
    #: :data:`repro.core.pending.PENDING_POLICIES`, e.g. ``"hallucinate"``).
    #: ``None`` for non-async drivers and for runs loaded from pre-v7 files.
    pending_policy: str | None = None
    #: Surrogate posterior configuration the run used (a value from
    #: :data:`repro.core.surrogate.SURROGATE_KINDS`: ``"exact"``,
    #: ``"sparse"``, or ``"auto"``).  ``None`` for model-free algorithms and
    #: for runs loaded from pre-v8 files.
    surrogate: str | None = None

    @property
    def best_curve(self):
        """Best-FOM-versus-time step curve from the trace."""
        return self.trace.best_fom_curve()

    def __post_init__(self):
        if self.n_evaluations < 0:
            raise ValueError("n_evaluations must be non-negative")
        if self.wall_clock < 0:
            raise ValueError("wall_clock must be non-negative")
        if self.n_failures < 0 or self.n_retries < 0:
            raise ValueError("failure counters must be non-negative")


@dataclasses.dataclass
class RunSummary:
    """The paper's table row: Best / Worst / Mean / Std / Time."""

    algorithm: str
    best: float
    worst: float
    mean: float
    std: float
    mean_time: float
    n_runs: int

    def as_row(self) -> list:
        """Row in the layout of Tables I/II."""
        return [
            self.algorithm,
            f"{self.best:.2f}",
            f"{self.worst:.2f}",
            f"{self.mean:.2f}",
            f"{self.std:.2f}",
            format_duration(self.mean_time),
        ]


def summarize_runs(results: list[RunResult]) -> RunSummary:
    """Aggregate repetitions of one algorithm into a table row.

    All results must come from the same algorithm; the time column is the
    mean evaluation wall-clock across repetitions (the paper averages its 20
    repeats the same way).
    """
    if not results:
        raise ValueError("need at least one run")
    algorithms = {r.algorithm for r in results}
    if len(algorithms) != 1:
        raise ValueError(f"mixed algorithms in summary: {sorted(algorithms)}")
    foms = np.asarray([r.best_fom for r in results])
    times = np.asarray([r.wall_clock for r in results])
    return RunSummary(
        algorithm=results[0].algorithm,
        best=float(foms.max()),
        worst=float(foms.min()),
        mean=float(foms.mean()),
        std=float(foms.std(ddof=1)) if len(foms) > 1 else 0.0,
        mean_time=float(times.mean()),
        n_runs=len(results),
    )
