"""Acquisition functions (paper §II-B, §II-C, §III-B).

All acquisitions are *maximized* and operate on a fitted
:class:`~repro.gp.GaussianProcess` over the (standardized) observations:

* :class:`UpperConfidenceBound` — Eq. 3.  The paper's LCB baseline is this
  same optimistic rule expressed for maximization.
* :class:`ExpectedImprovement` / :class:`ProbabilityOfImprovement` —
  classical baselines.
* :class:`WeightedAcquisition` — Eq. 7/8: ``(1-w) mu + w sigma``.  pBO uses a
  uniform grid of weights; EasyBO draws ``w = kappa/(kappa+1)`` with
  ``kappa ~ U[0, lambda]`` (:func:`sample_easybo_weight`), concentrating the
  density near w=1 (Fig. 2).
* :class:`HighCoveragePenalty` — the pHCBO penalization term of Eq. 6.
"""

from __future__ import annotations

import abc

import numpy as np
from scipy import stats

from repro.utils.rng import as_generator
from repro.utils.validation import check_matrix

__all__ = [
    "Acquisition",
    "UpperConfidenceBound",
    "ExpectedImprovement",
    "ProbabilityOfImprovement",
    "WeightedAcquisition",
    "sample_easybo_weight",
    "pbo_weights",
    "HighCoveragePenalty",
    "EASYBO_LAMBDA",
]

#: The paper's lambda: kappa is drawn uniformly from [0, 6] (§III-B).
EASYBO_LAMBDA = 6.0


class Acquisition(abc.ABC):
    """Maps a GP model and candidate points to acquisition values."""

    @abc.abstractmethod
    def __call__(self, model, X: np.ndarray) -> np.ndarray:
        """Acquisition values (higher = more desirable); shape ``(n,)``."""


class UpperConfidenceBound(Acquisition):
    """``UCB(x) = mu(x) + kappa * sigma(x)`` (Eq. 3)."""

    def __init__(self, kappa: float = 2.0):
        if kappa < 0:
            raise ValueError(f"kappa must be >= 0, got {kappa}")
        self.kappa = float(kappa)

    def __call__(self, model, X) -> np.ndarray:
        mu, sigma = model.predict(check_matrix(X))
        return mu + self.kappa * sigma


class ExpectedImprovement(Acquisition):
    """EI over the incumbent best (maximization form).

    ``EI(x) = (mu - best - xi) Phi(z) + sigma phi(z)`` with
    ``z = (mu - best - xi) / sigma``.
    """

    def __init__(self, best_y: float, xi: float = 0.0):
        self.best_y = float(best_y)
        self.xi = float(xi)

    def __call__(self, model, X) -> np.ndarray:
        mu, sigma = model.predict(check_matrix(X))
        sigma = np.maximum(sigma, 1e-12)
        improve = mu - self.best_y - self.xi
        z = improve / sigma
        return improve * stats.norm.cdf(z) + sigma * stats.norm.pdf(z)


class ProbabilityOfImprovement(Acquisition):
    """``PI(x) = Phi((mu - best - xi) / sigma)``."""

    def __init__(self, best_y: float, xi: float = 0.01):
        self.best_y = float(best_y)
        self.xi = float(xi)

    def __call__(self, model, X) -> np.ndarray:
        mu, sigma = model.predict(check_matrix(X))
        sigma = np.maximum(sigma, 1e-12)
        return stats.norm.cdf((mu - self.best_y - self.xi) / sigma)


class WeightedAcquisition(Acquisition):
    """``alpha(x, w) = (1 - w) mu(x) + w sigma(x)`` (Eq. 7/8/9).

    With a *hallucinated* model (pending points folded in, §III-C) the sigma
    term is the paper's sigma-hat and this is exactly Eq. 9.
    """

    def __init__(self, w: float):
        if not 0.0 <= w <= 1.0:
            raise ValueError(f"w must lie in [0, 1], got {w}")
        self.w = float(w)

    def __call__(self, model, X) -> np.ndarray:
        mu, sigma = model.predict(check_matrix(X))
        return (1.0 - self.w) * mu + self.w * sigma


def sample_easybo_weight(rng=None, lam: float = EASYBO_LAMBDA) -> float:
    """Draw ``w = kappa / (kappa + 1)`` with ``kappa ~ U[0, lam]`` (Eq. 8).

    The induced density of ``w`` on [0, lam/(lam+1)] is ``1/(lam (1-w)^2)``:
    increasing in w, i.e. exploration-heavy weights are sampled more densely
    (paper Fig. 2).
    """
    if lam <= 0:
        raise ValueError(f"lambda must be positive, got {lam}")
    kappa = as_generator(rng).uniform(0.0, lam)
    return float(kappa / (kappa + 1.0))


def pbo_weights(batch_size: int) -> np.ndarray:
    """pBO's uniform weight grid ``w_i = (i-1)/(B-1)`` (paper §IV).

    ``B = 1`` degenerates to the single weight 0.5.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if batch_size == 1:
        return np.array([0.5])
    return np.arange(batch_size) / (batch_size - 1.0)


class HighCoveragePenalty:
    """pHCBO's coverage penalty ``alpha_HC`` (Eq. 6).

    For weight slot ``i``, the penalty at ``x`` is

        N_HC * exp( (1/5) * sum_{j=1..5} (d / ||x - x_{b-j,i}||)^10 )

    over that slot's previous (up to) five query points — a steep wall inside
    radius ``d`` of recent queries by the same acquisition.  ``d`` is a
    manually defined parameter in the paper; we default it to 5% of the unit-
    cube diagonal.
    """

    #: Most recent queries per weight slot considered by the penalty.
    HISTORY = 5

    def __init__(self, dim: int, d: float | None = None, n_hc: float = 1.0):
        if dim < 1:
            raise ValueError("dim must be >= 1")
        self.dim = int(dim)
        self.d = float(d) if d is not None else 0.05 * np.sqrt(dim)
        if self.d <= 0:
            raise ValueError("d must be positive")
        self.n_hc = float(n_hc)
        self._history: dict[int, list[np.ndarray]] = {}

    def record(self, slot: int, x: np.ndarray) -> None:
        """Remember that weight slot ``slot`` queried ``x`` this batch."""
        queue = self._history.setdefault(int(slot), [])
        queue.append(np.asarray(x, dtype=float).copy())
        if len(queue) > self.HISTORY:
            queue.pop(0)

    def __call__(self, slot: int, X: np.ndarray) -> np.ndarray:
        """Penalty values for candidates ``X`` against slot ``slot``."""
        X = check_matrix(X, "X", cols=self.dim)
        history = self._history.get(int(slot), [])
        if not history:
            return np.zeros(X.shape[0])
        exponents = np.zeros(X.shape[0])
        for x_prev in history:
            dist = np.linalg.norm(X - x_prev[None, :], axis=1)
            dist = np.maximum(dist, 1e-12)
            exponents += np.minimum((self.d / dist) ** 10, 500.0)
        exponents /= len(history)
        return self.n_hc * (np.exp(np.minimum(exponents, 500.0)) - 1.0)
