"""Initial experimental designs.

The paper seeds every BO run with 20 random samples; Latin hypercube sampling
is also provided since it is the de-facto standard for GP initialization and
is used by our examples.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_bounds

__all__ = ["random_design", "latin_hypercube"]


def random_design(bounds, n: int, rng=None) -> np.ndarray:
    """``n`` i.i.d. uniform points in the box; shape ``(n, d)``."""
    bounds = check_bounds(bounds)
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = as_generator(rng)
    return rng.uniform(bounds[:, 0], bounds[:, 1], size=(n, bounds.shape[0]))


def latin_hypercube(bounds, n: int, rng=None) -> np.ndarray:
    """Latin hypercube design: one point per axis-aligned stratum.

    Each dimension is divided into ``n`` equal slices; the design places one
    point uniformly inside each slice and shuffles the slice order
    independently per dimension.
    """
    bounds = check_bounds(bounds)
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = as_generator(rng)
    d = bounds.shape[0]
    u = np.empty((n, d))
    for j in range(d):
        perm = rng.permutation(n)
        u[:, j] = (perm + rng.uniform(size=n)) / n
    return bounds[:, 0] + u * (bounds[:, 1] - bounds[:, 0])
