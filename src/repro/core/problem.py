"""Black-box problem interface shared by optimizers and testbenches.

The BO drivers, DE baseline, and schedulers all see a problem through this
interface: a box-bounded design space plus an ``evaluate`` that returns a
scalar figure of merit to *maximize*, the raw performance metrics, and the
simulation cost in seconds (the currency of the paper's "Time" columns).
"""

from __future__ import annotations

import abc
import dataclasses

import numpy as np

from repro.utils.validation import check_bounds, check_vector

__all__ = [
    "EvaluationResult",
    "Problem",
    "FunctionProblem",
    "STATUS_OK",
    "STATUS_CRASHED",
    "STATUS_NAN",
    "STATUS_TIMEOUT",
    "STATUS_ORPHANED",
    "FAILURE_STATUSES",
]

#: Evaluation outcome statuses.  ``STATUS_OK`` is a usable observation;
#: everything else is a failure the driver must impute or drop.
STATUS_OK = "ok"
STATUS_CRASHED = "crashed"
STATUS_NAN = "nan"
STATUS_TIMEOUT = "timeout"
STATUS_ORPHANED = "orphaned"
FAILURE_STATUSES = frozenset(
    {STATUS_CRASHED, STATUS_NAN, STATUS_TIMEOUT, STATUS_ORPHANED}
)
_VALID_STATUSES = frozenset({STATUS_OK}) | FAILURE_STATUSES


@dataclasses.dataclass
class EvaluationResult:
    """Outcome of one simulator call.

    Attributes
    ----------
    fom:
        Figure of merit (higher is better).  Must be finite when
        ``status == "ok"``; failed results carry NaN and never reach the
        surrogate.
    metrics:
        Raw performance numbers behind the FOM (gain/UGF/PM, PAE/Pout...).
    cost:
        Simulation time in seconds charged to the worker that ran it.
    feasible:
        False when the design missed a hard validity check; the FOM then
        holds the penalty value (still a usable, finite observation —
        distinct from ``status != "ok"``, which is a *failed* evaluation).
    status:
        ``"ok"``, or one of the failure statuses ``"crashed"`` / ``"nan"``
        / ``"timeout"``.
    error:
        Human-readable failure cause (``None`` for successes).
    """

    fom: float
    metrics: dict[str, float] = dataclasses.field(default_factory=dict)
    cost: float = 1.0
    feasible: bool = True
    status: str = STATUS_OK
    error: str | None = None

    def __post_init__(self):
        if self.status not in _VALID_STATUSES:
            raise ValueError(
                f"status must be one of {sorted(_VALID_STATUSES)}, got {self.status!r}"
            )
        if self.status == STATUS_OK and not np.isfinite(self.fom):
            raise ValueError(f"fom must be finite, got {self.fom}")
        if not np.isfinite(self.cost) or self.cost < 0:
            raise ValueError(f"cost must be finite and non-negative, got {self.cost}")

    @property
    def ok(self) -> bool:
        """True when this is a usable observation (status ``"ok"``)."""
        return self.status == STATUS_OK

    @classmethod
    def failed(
        cls,
        error: str,
        *,
        status: str = STATUS_CRASHED,
        cost: float = 0.0,
        metrics: dict[str, float] | None = None,
    ) -> "EvaluationResult":
        """A failed-evaluation record (NaN FOM, infeasible, explicit cause)."""
        if status not in FAILURE_STATUSES:
            raise ValueError(f"failed() needs a failure status, got {status!r}")
        return cls(
            fom=float("nan"),
            metrics=metrics or {},
            cost=cost,
            feasible=False,
            status=status,
            error=str(error),
        )


class Problem(abc.ABC):
    """A box-bounded maximization problem with per-evaluation costs."""

    #: Human-readable problem name (set by subclasses).
    name: str = "problem"

    @property
    @abc.abstractmethod
    def bounds(self) -> np.ndarray:
        """Box bounds of shape ``(d, 2)`` in the optimizer's coordinates."""

    @property
    def dim(self) -> int:
        return self.bounds.shape[0]

    @abc.abstractmethod
    def evaluate(self, x: np.ndarray) -> EvaluationResult:
        """Evaluate one design point (optimizer coordinates)."""

    def evaluate_batch(self, X: np.ndarray) -> list[EvaluationResult]:
        """Evaluate several points sequentially (convenience for tests)."""
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        return [self.evaluate(x) for x in X]

    def validate_point(self, x) -> np.ndarray:
        """Check shape and clip into bounds (guards optimizer round-off)."""
        x = check_vector(x, "x", size=self.dim)
        bounds = self.bounds
        return np.clip(x, bounds[:, 0], bounds[:, 1])


class FunctionProblem(Problem):
    """Wrap a plain Python function as a :class:`Problem`.

    Parameters
    ----------
    func:
        Maps a 1-D design vector to a scalar FOM (maximized).
    bounds:
        Box bounds, shape ``(d, 2)``.
    cost_model:
        Optional callable ``x -> seconds``; defaults to unit cost.
    name:
        Label used in reports.
    """

    def __init__(self, func, bounds, *, cost_model=None, name: str = "function"):
        self._func = func
        self._bounds = check_bounds(bounds)
        self._cost_model = cost_model
        self.name = name

    @property
    def bounds(self) -> np.ndarray:
        return self._bounds

    def evaluate(self, x: np.ndarray) -> EvaluationResult:
        x = self.validate_point(x)
        fom = float(self._func(x))
        cost = 1.0 if self._cost_model is None else float(self._cost_model(x))
        return EvaluationResult(fom=fom, cost=cost)
