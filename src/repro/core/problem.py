"""Black-box problem interface shared by optimizers and testbenches.

The BO drivers, DE baseline, and schedulers all see a problem through this
interface: a box-bounded design space plus an ``evaluate`` that returns a
scalar figure of merit to *maximize*, the raw performance metrics, and the
simulation cost in seconds (the currency of the paper's "Time" columns).
"""

from __future__ import annotations

import abc
import dataclasses

import numpy as np

from repro.utils.validation import check_bounds, check_vector

__all__ = ["EvaluationResult", "Problem", "FunctionProblem"]


@dataclasses.dataclass
class EvaluationResult:
    """Outcome of one simulator call.

    Attributes
    ----------
    fom:
        Figure of merit (higher is better).  Failed simulations must be
        encoded as a finite penalty value, never NaN.
    metrics:
        Raw performance numbers behind the FOM (gain/UGF/PM, PAE/Pout...).
    cost:
        Simulation time in seconds charged to the worker that ran it.
    feasible:
        False when the design failed to simulate or missed a hard validity
        check; the FOM then holds the penalty value.
    """

    fom: float
    metrics: dict[str, float] = dataclasses.field(default_factory=dict)
    cost: float = 1.0
    feasible: bool = True

    def __post_init__(self):
        if not np.isfinite(self.fom):
            raise ValueError(f"fom must be finite, got {self.fom}")
        if self.cost < 0:
            raise ValueError(f"cost must be non-negative, got {self.cost}")


class Problem(abc.ABC):
    """A box-bounded maximization problem with per-evaluation costs."""

    #: Human-readable problem name (set by subclasses).
    name: str = "problem"

    @property
    @abc.abstractmethod
    def bounds(self) -> np.ndarray:
        """Box bounds of shape ``(d, 2)`` in the optimizer's coordinates."""

    @property
    def dim(self) -> int:
        return self.bounds.shape[0]

    @abc.abstractmethod
    def evaluate(self, x: np.ndarray) -> EvaluationResult:
        """Evaluate one design point (optimizer coordinates)."""

    def evaluate_batch(self, X: np.ndarray) -> list[EvaluationResult]:
        """Evaluate several points sequentially (convenience for tests)."""
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        return [self.evaluate(x) for x in X]

    def validate_point(self, x) -> np.ndarray:
        """Check shape and clip into bounds (guards optimizer round-off)."""
        x = check_vector(x, "x", size=self.dim)
        bounds = self.bounds
        return np.clip(x, bounds[:, 0], bounds[:, 1])


class FunctionProblem(Problem):
    """Wrap a plain Python function as a :class:`Problem`.

    Parameters
    ----------
    func:
        Maps a 1-D design vector to a scalar FOM (maximized).
    bounds:
        Box bounds, shape ``(d, 2)``.
    cost_model:
        Optional callable ``x -> seconds``; defaults to unit cost.
    name:
        Label used in reports.
    """

    def __init__(self, func, bounds, *, cost_model=None, name: str = "function"):
        self._func = func
        self._bounds = check_bounds(bounds)
        self._cost_model = cost_model
        self.name = name

    @property
    def bounds(self) -> np.ndarray:
        return self._bounds

    def evaluate(self, x: np.ndarray) -> EvaluationResult:
        x = self.validate_point(x)
        fom = float(self._func(x))
        cost = 1.0 if self._cost_model is None else float(self._cost_model(x))
        return EvaluationResult(fom=fom, cost=cost)
