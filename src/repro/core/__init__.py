"""EasyBO core: the paper's asynchronous batch BO plus every compared driver.

Public surface:

* :class:`EasyBO` — high-level facade (async / sync / ablations).
* :class:`Campaign` — the ask/tell optimizer core every driver loops over
  (:func:`make_campaign` / :func:`resume_campaign` for standalone use).
* Drivers: :class:`SequentialBO`, :class:`SynchronousBatchBO`,
  :class:`AsynchronousBatchBO`.
* Pending-point policies (:mod:`repro.core.pending`): how asynchronous
  proposals account for in-flight points — ``"hallucinate"`` (Eq. 9,
  default), ``"lp"``, ``"pessimistic"``, ``"none"``.
* Acquisitions (§II-B/III-B): UCB, EI, PI, the weighted rule (Eq. 7-9), the
  EasyBO weight sampler, the pHCBO coverage penalty.
* :func:`make_algorithm` — paper-label registry used by the benches.
* Plumbing: :class:`Problem`, :class:`EvaluationResult`, :class:`RunResult`,
  :func:`summarize_runs`, initial designs, the acquisition maximizer, and
  :class:`SurrogateSession`.
* Crash safety: :class:`JournalWriter` (write-ahead run journal) and
  :func:`resume` (replay + continue after a crash).
"""

from repro.core.acquisition import (
    EASYBO_LAMBDA,
    Acquisition,
    ExpectedImprovement,
    HighCoveragePenalty,
    ProbabilityOfImprovement,
    UpperConfidenceBound,
    WeightedAcquisition,
    pbo_weights,
    sample_easybo_weight,
)
from repro.core.async_batch import AsynchronousBatchBO
from repro.core.bo import BODriverBase, SequentialBO
from repro.core.campaign import (
    Campaign,
    CampaignError,
    CampaignExhausted,
    make_campaign,
    resume_campaign,
)
from repro.core.constrained import ConstrainedEasyBO, ConstrainedProblem, ConstraintSpec
from repro.core.cost_aware import CostAwareEasyBO
from repro.core.doe import latin_hypercube, random_design
from repro.core.easybo import ALGORITHM_FAMILIES, EasyBO, make_algorithm
from repro.core.faults import (
    FailurePolicy,
    FaultInjectionProblem,
    KillSwitchJournal,
    KillSwitchProblem,
    ProcessKilled,
    SimulationError,
    run_with_policy,
)
from repro.core.journal import (
    JournalError,
    JournalWriter,
    read_journal,
    recover_journal,
)
from repro.core.optimizers import maximize_acquisition
from repro.core.pending import (
    PENDING_POLICIES,
    HallucinatePolicy,
    LocalPenalisationPolicy,
    PendingPolicy,
    PessimisticPolicy,
    StandardPolicy,
    make_pending_policy,
)
from repro.core.persistence import load_runs, run_from_dict, run_to_dict, save_runs
from repro.core.recovery import resolve_problem, resume
from repro.core.portfolio import PortfolioBO
from repro.core.problem import EvaluationResult, FunctionProblem, Problem
from repro.core.results import RunResult, RunSummary, summarize_runs
from repro.core.surrogate import (
    SURROGATE_UPDATE_MODES,
    HallucinatedView,
    SurrogateSession,
)
from repro.core.sync_batch import SYNC_STRATEGIES, SynchronousBatchBO

__all__ = [
    "EasyBO",
    "make_algorithm",
    "ALGORITHM_FAMILIES",
    "Campaign",
    "CampaignError",
    "CampaignExhausted",
    "make_campaign",
    "resume_campaign",
    "PendingPolicy",
    "PENDING_POLICIES",
    "HallucinatePolicy",
    "LocalPenalisationPolicy",
    "PessimisticPolicy",
    "StandardPolicy",
    "make_pending_policy",
    "SequentialBO",
    "SynchronousBatchBO",
    "AsynchronousBatchBO",
    "BODriverBase",
    "SYNC_STRATEGIES",
    "Acquisition",
    "UpperConfidenceBound",
    "ExpectedImprovement",
    "ProbabilityOfImprovement",
    "WeightedAcquisition",
    "HighCoveragePenalty",
    "sample_easybo_weight",
    "pbo_weights",
    "EASYBO_LAMBDA",
    "ConstrainedEasyBO",
    "ConstrainedProblem",
    "ConstraintSpec",
    "CostAwareEasyBO",
    "Problem",
    "FunctionProblem",
    "EvaluationResult",
    "FailurePolicy",
    "FaultInjectionProblem",
    "SimulationError",
    "run_with_policy",
    "RunResult",
    "RunSummary",
    "summarize_runs",
    "SurrogateSession",
    "HallucinatedView",
    "SURROGATE_UPDATE_MODES",
    "maximize_acquisition",
    "PortfolioBO",
    "save_runs",
    "load_runs",
    "run_to_dict",
    "run_from_dict",
    "random_design",
    "latin_hypercube",
    "JournalWriter",
    "JournalError",
    "read_journal",
    "recover_journal",
    "resume",
    "resolve_problem",
    "ProcessKilled",
    "KillSwitchProblem",
    "KillSwitchJournal",
]
