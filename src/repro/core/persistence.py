"""Save and load experiment results as JSON.

The bench harness runs for hours at paper scale; persisting each
:class:`~repro.core.results.RunResult` (including the full execution trace)
lets tables and figures be re-rendered, compared across commits, and resumed
without recomputation.  The format is plain JSON — stable, diffable, and free
of pickle's versioning hazards.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.core.results import RunResult
from repro.sched.trace import EvalRecord, ExecutionTrace, SurrogateStats

__all__ = ["run_to_dict", "run_from_dict", "save_runs", "load_runs"]

#: Version 2 added failure semantics: per-record status/error/attempts and
#: run-level failure counters.  Version-1 files (no failures recorded) load
#: with every record treated as a success.  Version 3 added the optional
#: ``surrogate_stats`` block (incremental-update instrumentation); older
#: files load with it absent.
_FORMAT_VERSION = 3
_READABLE_VERSIONS = frozenset({1, 2, 3})


def run_to_dict(run: RunResult) -> dict:
    """JSON-serializable representation of one run."""
    return {
        "version": _FORMAT_VERSION,
        "algorithm": run.algorithm,
        "problem": run.problem,
        "best_x": run.best_x.tolist(),
        "best_fom": run.best_fom,
        "n_evaluations": run.n_evaluations,
        "wall_clock": run.wall_clock,
        "n_failures": run.n_failures,
        "n_retries": run.n_retries,
        "surrogate_stats": (
            None if run.surrogate_stats is None else run.surrogate_stats.as_dict()
        ),
        "n_workers": run.trace.n_workers,
        "records": [
            {
                "index": r.index,
                "worker": r.worker,
                "x": r.x.tolist(),
                "fom": None if not np.isfinite(r.fom) else r.fom,
                "issue_time": r.issue_time,
                "finish_time": r.finish_time,
                "feasible": r.feasible,
                "batch": r.batch,
                "status": r.status,
                "error": r.error,
                "attempts": r.attempts,
            }
            for r in run.trace.records
        ],
    }


def run_from_dict(data: dict) -> RunResult:
    """Rebuild a :class:`RunResult` from :func:`run_to_dict` output."""
    version = data.get("version")
    if version not in _READABLE_VERSIONS:
        raise ValueError(f"unsupported run format version {version!r}")
    trace = ExecutionTrace(int(data["n_workers"]))
    for r in data["records"]:
        trace.add(
            EvalRecord(
                index=int(r["index"]),
                worker=int(r["worker"]),
                x=np.asarray(r["x"], dtype=float),
                fom=float("nan") if r["fom"] is None else float(r["fom"]),
                issue_time=float(r["issue_time"]),
                finish_time=float(r["finish_time"]),
                feasible=bool(r["feasible"]),
                batch=r["batch"] if r["batch"] is None else int(r["batch"]),
                status=str(r.get("status", "ok")),
                error=r.get("error"),
                attempts=int(r.get("attempts", 1)),
            )
        )
    stats_data = data.get("surrogate_stats")
    stats = None if stats_data is None else SurrogateStats.from_dict(stats_data)
    trace.surrogate_stats = stats
    return RunResult(
        algorithm=str(data["algorithm"]),
        problem=str(data["problem"]),
        trace=trace,
        best_x=np.asarray(data["best_x"], dtype=float),
        best_fom=float(data["best_fom"]),
        n_evaluations=int(data["n_evaluations"]),
        wall_clock=float(data["wall_clock"]),
        n_failures=int(data.get("n_failures", 0)),
        n_retries=int(data.get("n_retries", 0)),
        surrogate_stats=stats,
    )


def save_runs(path, grid: dict[str, list[RunResult]]) -> None:
    """Write a label -> repetitions grid to a JSON file."""
    payload = {
        "version": _FORMAT_VERSION,
        "grid": {
            label: [run_to_dict(run) for run in runs] for label, runs in grid.items()
        },
    }
    path = pathlib.Path(path)
    path.write_text(json.dumps(payload))


def load_runs(path) -> dict[str, list[RunResult]]:
    """Read back a grid written by :func:`save_runs`."""
    payload = json.loads(pathlib.Path(path).read_text())
    if payload.get("version") not in _READABLE_VERSIONS:
        raise ValueError(f"unsupported grid format version {payload.get('version')!r}")
    return {
        label: [run_from_dict(d) for d in runs]
        for label, runs in payload["grid"].items()
    }
