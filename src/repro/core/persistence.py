"""Save and load experiment results as JSON.

The bench harness runs for hours at paper scale; persisting each
:class:`~repro.core.results.RunResult` (including the full execution trace)
lets tables and figures be re-rendered, compared across commits, and resumed
without recomputation.  The format is plain JSON — stable, diffable, and free
of pickle's versioning hazards.
"""

from __future__ import annotations

import json
import os
import pathlib

import numpy as np

from repro.core.results import RunResult
from repro.sched.trace import EvalRecord, ExecutionTrace, PoolTelemetry, SurrogateStats

__all__ = ["run_to_dict", "run_from_dict", "save_runs", "load_runs"]

#: Version 2 added failure semantics: per-record status/error/attempts and
#: run-level failure counters.  Version-1 files (no failures recorded) load
#: with every record treated as a success.  Version 3 added the optional
#: ``surrogate_stats`` block (incremental-update instrumentation); older
#: files load with it absent.  Version 4 added the optional final
#: ``rng_state`` block (crash-safe runs); older files load with it ``None``.
#: Version 5 added the optional ``pool_telemetry`` block (evaluation-pool
#: operational counters); older files load with it ``None``.  Version 6
#: added the optional ``metrics`` block (the run's
#: :class:`~repro.obs.MetricsRegistry` snapshot); older files load with it
#: ``None``.  Version 7 added the optional ``pending_policy`` field (which
#: asynchronous pending-point policy the run used, see
#: :mod:`repro.core.pending`); older files load with it ``None``.  Version 8
#: added the optional ``surrogate`` field (which posterior configuration the
#: run used: ``"exact"``, ``"sparse"``, or ``"auto"``, see
#: :mod:`repro.gp.sparse`); older files load with it ``None``.
_FORMAT_VERSION = 8
_READABLE_VERSIONS = frozenset({1, 2, 3, 4, 5, 6, 7, 8})


def _check_version(version, what: str) -> None:
    """Reject unreadable format versions with an actionable message.

    A file from a *newer* release is the common real-world case (results
    shared between machines on different versions), so it gets its own
    wording: the data is fine, this installation is just too old to read it.
    """
    if version in _READABLE_VERSIONS:
        return
    if isinstance(version, int) and version > _FORMAT_VERSION:
        raise ValueError(
            f"{what} format v{version} is newer than supported "
            f"v{_FORMAT_VERSION}; upgrade this installation to read it"
        )
    raise ValueError(f"unsupported {what} format version {version!r}")


def run_to_dict(run: RunResult) -> dict:
    """JSON-serializable representation of one run."""
    return {
        "version": _FORMAT_VERSION,
        "algorithm": run.algorithm,
        "problem": run.problem,
        "best_x": run.best_x.tolist(),
        "best_fom": run.best_fom,
        "n_evaluations": run.n_evaluations,
        "wall_clock": run.wall_clock,
        "n_failures": run.n_failures,
        "n_retries": run.n_retries,
        "surrogate_stats": (
            None if run.surrogate_stats is None else run.surrogate_stats.as_dict()
        ),
        "rng_state": run.rng_state,
        "pool_telemetry": (
            None if run.pool_telemetry is None else run.pool_telemetry.as_dict()
        ),
        "metrics": run.metrics,
        "pending_policy": run.pending_policy,
        "surrogate": run.surrogate,
        "n_workers": run.trace.n_workers,
        "records": [r.as_dict() for r in run.trace.records],
    }


def run_from_dict(data: dict) -> RunResult:
    """Rebuild a :class:`RunResult` from :func:`run_to_dict` output."""
    _check_version(data.get("version"), "run")
    trace = ExecutionTrace(int(data["n_workers"]))
    for r in data["records"]:
        trace.add(EvalRecord.from_dict(r))
    stats_data = data.get("surrogate_stats")
    stats = None if stats_data is None else SurrogateStats.from_dict(stats_data)
    trace.surrogate_stats = stats
    tele_data = data.get("pool_telemetry")
    telemetry = None if tele_data is None else PoolTelemetry.from_dict(tele_data)
    trace.pool_telemetry = telemetry
    return RunResult(
        algorithm=str(data["algorithm"]),
        problem=str(data["problem"]),
        trace=trace,
        best_x=np.asarray(data["best_x"], dtype=float),
        best_fom=float(data["best_fom"]),
        n_evaluations=int(data["n_evaluations"]),
        wall_clock=float(data["wall_clock"]),
        n_failures=int(data.get("n_failures", 0)),
        n_retries=int(data.get("n_retries", 0)),
        surrogate_stats=stats,
        rng_state=data.get("rng_state"),
        pool_telemetry=telemetry,
        metrics=data.get("metrics"),
        pending_policy=data.get("pending_policy"),
        surrogate=data.get("surrogate"),
    )


def save_runs(path, grid: dict[str, list[RunResult]]) -> None:
    """Write a label -> repetitions grid to a JSON file.

    The write is atomic: the payload lands in a same-directory temp file
    that is fsync'd and then :func:`os.replace`-d over the target, so a
    crash mid-save leaves either the previous grid or the new one — never
    a truncated file that :func:`load_runs` would choke on.
    """
    payload = {
        "version": _FORMAT_VERSION,
        "grid": {
            label: [run_to_dict(run) for run in runs] for label, runs in grid.items()
        },
    }
    path = pathlib.Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def load_runs(path) -> dict[str, list[RunResult]]:
    """Read back a grid written by :func:`save_runs`."""
    payload = json.loads(pathlib.Path(path).read_text())
    _check_version(payload.get("version"), "grid")
    return {
        label: [run_from_dict(d) for d in runs]
        for label, runs in payload["grid"].items()
    }
