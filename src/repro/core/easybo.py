"""High-level EasyBO facade and the algorithm registry used by the benches.

:class:`EasyBO` is the one-stop user API::

    from repro import EasyBO
    from repro.circuits import OpAmpProblem

    result = EasyBO(OpAmpProblem(), batch_size=5, rng=0).optimize()
    print(result.best_fom, result.best_x)

:func:`make_algorithm` turns the paper's row labels ("pBO-5", "EasyBO-SP-10",
"DE", "LCB", ...) into configured drivers, which is how the Table I/II benches
enumerate their grids.
"""

from __future__ import annotations

import re

from repro.baselines.de import DifferentialEvolution
from repro.baselines.random_search import RandomSearch
from repro.core.async_batch import AsynchronousBatchBO
from repro.core.bo import SequentialBO
from repro.core.problem import Problem
from repro.core.results import RunResult
from repro.core.sync_batch import SynchronousBatchBO

__all__ = ["EasyBO", "make_algorithm", "ALGORITHM_FAMILIES"]


class EasyBO:
    """The paper's algorithm with sensible defaults.

    Parameters
    ----------
    problem:
        Any :class:`~repro.core.problem.Problem`.
    batch_size:
        Number of parallel workers B; 1 gives sequential EasyBO.
    mode:
        ``"async"`` (the contribution), ``"sync"`` (EasyBO-SP), or their
        unpenalized ablations ``"async-nopen"`` / ``"sync-nopen"``.
    n_init / max_evals / rng / pool_factory:
        Forwarded to the underlying driver (paper defaults: 20 / 150).
    failure_policy:
        Optional :class:`~repro.core.faults.FailurePolicy` (forwarded like
        any driver kwarg): retries/timeouts for the pool, impute-or-drop
        for the driver.  Defaults to no retries, pessimistic imputation.
    surrogate_update / refit_every:
        Surrogate fast-path knobs (forwarded like any driver kwarg):
        ``surrogate_update="incremental"`` (default) reuses the cached
        Cholesky factor between ML-II fits, and ``refit_every=K`` pays the
        hyperparameter fit only every K dispatches.  See
        :class:`~repro.core.surrogate.SurrogateSession`.
    journal / checkpoint_every:
        Crash safety (forwarded like any driver kwarg): ``journal=path``
        appends every state transition to a write-ahead journal that
        :func:`repro.core.recovery.resume` can replay after a crash, and
        ``checkpoint_every=N`` adds a verification checkpoint record every
        N completions.  See :mod:`repro.core.journal`.
    """

    def __init__(
        self,
        problem: Problem,
        *,
        batch_size: int = 5,
        mode: str = "async",
        n_init: int = 20,
        max_evals: int = 150,
        rng=None,
        pool_factory=None,
        **driver_kwargs,
    ):
        mode = mode.lower()
        common = dict(
            n_init=n_init,
            max_evals=max_evals,
            rng=rng,
            pool_factory=pool_factory,
            **driver_kwargs,
        )
        if mode == "async":
            self.driver = AsynchronousBatchBO(
                problem, batch_size=batch_size, penalized=True, **common
            )
        elif mode == "async-nopen":
            self.driver = AsynchronousBatchBO(
                problem, batch_size=batch_size, penalized=False, **common
            )
        elif mode == "sync":
            self.driver = SynchronousBatchBO(
                problem, batch_size=batch_size, strategy="easybo-sp", **common
            )
        elif mode == "sync-nopen":
            self.driver = SynchronousBatchBO(
                problem, batch_size=batch_size, strategy="easybo-s", **common
            )
        else:
            raise ValueError(
                f"unknown mode {mode!r}; choose async, async-nopen, sync, sync-nopen"
            )

    def optimize(self) -> RunResult:
        """Run the optimization to completion and return the result."""
        return self.driver.run()


#: Registry of label prefixes -> factory(problem, batch_size, **kwargs).
ALGORITHM_FAMILIES = {
    "de": lambda problem, b, **kw: DifferentialEvolution(problem, **_de_kwargs(kw)),
    "random": lambda problem, b, **kw: RandomSearch(problem, **_rs_kwargs(kw)),
    "ei": lambda problem, b, **kw: SequentialBO(problem, acquisition="ei", **kw),
    "pi": lambda problem, b, **kw: SequentialBO(problem, acquisition="pi", **kw),
    "lcb": lambda problem, b, **kw: SequentialBO(problem, acquisition="lcb", **kw),
    "ucb": lambda problem, b, **kw: SequentialBO(problem, acquisition="ucb", **kw),
    "pbo": lambda problem, b, **kw: SynchronousBatchBO(
        problem, batch_size=b, strategy="pbo", **kw
    ),
    "phcbo": lambda problem, b, **kw: SynchronousBatchBO(
        problem, batch_size=b, strategy="phcbo", **kw
    ),
    "bucb": lambda problem, b, **kw: SynchronousBatchBO(
        problem, batch_size=b, strategy="bucb", **kw
    ),
    "lp": lambda problem, b, **kw: SynchronousBatchBO(
        problem, batch_size=b, strategy="lp", **kw
    ),
    "mace": lambda problem, b, **kw: SynchronousBatchBO(
        problem, batch_size=b, strategy="mace", **kw
    ),
    "ceasybo": lambda problem, b, **kw: _make_constrained(problem, b, **kw),
    "gp-hedge": lambda problem, b, **kw: _make_portfolio(problem, **kw),
    "easybo-s": lambda problem, b, **kw: SynchronousBatchBO(
        problem, batch_size=b, strategy="easybo-s", **kw
    ),
    "easybo-sp": lambda problem, b, **kw: SynchronousBatchBO(
        problem, batch_size=b, strategy="easybo-sp", **kw
    ),
    "easybo-a": lambda problem, b, **kw: AsynchronousBatchBO(
        problem, batch_size=b, penalized=False, **kw
    ),
    # Async EasyBO with a non-default pending-point policy, as a label:
    # "EasyBO-LP-5" / "EasyBO-PESS-5".  An explicit pending_policy kwarg
    # (e.g. from a resumed config) wins over the label's implied policy.
    "easybo-lp": lambda problem, b, **kw: AsynchronousBatchBO(
        problem, batch_size=b, **{"pending_policy": "lp", **kw}
    ),
    "easybo-pess": lambda problem, b, **kw: AsynchronousBatchBO(
        problem, batch_size=b, **{"pending_policy": "pessimistic", **kw}
    ),
    "easybo": lambda problem, b, **kw: _make_easybo(problem, b, **kw),
}

_LABEL_RE = re.compile(r"^(?P<family>[a-zA-Z][a-zA-Z-]*?)(?:-(?P<batch>\d+))?$")


def _make_easybo(problem, batch_size, **kw):
    """The ``easybo`` family: sequential at B=1, async otherwise.

    A ``pending_policy`` kwarg forces the asynchronous driver even at B=1 —
    the sequential driver has no pending set to apply a policy to.
    """
    if batch_size == 1 and kw.get("pending_policy") is None:
        kw.pop("pending_policy", None)
        return SequentialBO(problem, acquisition="easybo", **kw)
    return AsynchronousBatchBO(
        problem, batch_size=batch_size, penalized=True, **kw
    )


def _make_constrained(problem, batch_size, **kw):
    from repro.core.constrained import ConstrainedEasyBO

    return ConstrainedEasyBO(problem, batch_size=batch_size, **kw)


def _make_portfolio(problem, **kw):
    from repro.core.portfolio import PortfolioBO

    return PortfolioBO(problem, **kw)


def _de_kwargs(kw: dict) -> dict:
    out = {k: v for k, v in kw.items() if k in ("max_evals", "rng", "pool_factory", "pop_size", "f", "cr", "n_workers")}
    return out


def _rs_kwargs(kw: dict) -> dict:
    return {k: v for k, v in kw.items() if k in ("max_evals", "rng", "pool_factory", "n_workers")}


def make_algorithm(label: str, problem: Problem, **kwargs):
    """Instantiate a driver from a paper-style label.

    ``label`` is case-insensitive: ``"DE"``, ``"EI"``, ``"LCB"``,
    ``"EasyBO"``, ``"pBO-5"``, ``"pHCBO-10"``, ``"EasyBO-S-5"``,
    ``"EasyBO-A-15"``, ``"EasyBO-SP-10"``, ``"EasyBO-15"``, ``"BUCB-5"``,
    ``"LP-5"``, ``"Random"``.  A trailing ``-<int>`` is the batch size.
    The asynchronous pending-point policies also have label forms:
    ``"EasyBO-LP-5"`` (local penalisation), ``"EasyBO-PESS-5"``
    (pessimistic), ``"EasyBO-A-5"`` (standard acquisition) — equivalently,
    pass ``pending_policy=`` to the ``EasyBO`` family.  Keyword arguments
    are forwarded to the driver.
    """
    match = _LABEL_RE.match(label.strip())
    if not match:
        raise ValueError(f"cannot parse algorithm label {label!r}")
    family = match.group("family").lower()
    batch = int(match.group("batch")) if match.group("batch") else 1
    if family not in ALGORITHM_FAMILIES:
        raise ValueError(
            f"unknown algorithm family {family!r} in label {label!r}; "
            f"known: {sorted(ALGORITHM_FAMILIES)}"
        )
    return ALGORITHM_FAMILIES[family](problem, batch, **kwargs)
