"""Synchronous batch Bayesian optimization (paper §II-C and ablations).

One driver, several batch-selection strategies:

* ``"pbo"``    — pBO [Hu et al. 2018]: B weighted acquisitions on a uniform
  weight grid, each maximized independently on the same GP (Eq. 4).
* ``"phcbo"``  — pBO plus the high-coverage distance penalty (Eq. 5/6).
* ``"easybo-s"``  — EasyBO's randomized weights, selected independently
  (ablation: new acquisition, no penalization).
* ``"easybo-sp"`` — randomized weights *with* the pending-point
  hallucination applied sequentially inside the batch (ablation: new
  acquisition + new penalization, synchronous issue).
* ``"bucb"``   — GP-BUCB [Desautels et al. 2014]: hallucinated UCB (extension).
* ``"lp"``     — local penalization [Gonzalez et al. 2016] around batch
  points using a Lipschitz estimate (extension).
* ``"mace"``   — simplified MACE [Lyu et al. 2018]: sample the batch from
  the Pareto front of the (EI, PI, UCB) acquisition ensemble (extension;
  the original uses a multi-objective evolutionary solver, we use a dense
  candidate sweep + non-dominated filtering).

All strategies share the synchronous schedule: the next batch is only issued
once every member of the previous batch has finished (the barrier the paper's
asynchronous scheme removes).

The hallucinating strategies (``easybo-sp``, ``bucb``) build each batch
member's model through :meth:`SurrogateSession.model_with_pending`, so in
the default ``surrogate_update="incremental"`` mode every greedy step is a
rank-k :class:`~repro.core.surrogate.HallucinatedView` over the cached
factor rather than a per-point posterior rebuild.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.core.acquisition import (
    EASYBO_LAMBDA,
    ExpectedImprovement,
    HighCoveragePenalty,
    ProbabilityOfImprovement,
    UpperConfidenceBound,
    WeightedAcquisition,
    pbo_weights,
    sample_easybo_weight,
)
from repro.core.bo import BODriverBase, shutdown_pool
from repro.core.doe import random_design
from repro.core.results import RunResult
from repro.utils.rng import rng_state_to_dict

__all__ = ["SynchronousBatchBO", "SYNC_STRATEGIES"]


def _pareto_front_mask(scores: np.ndarray) -> np.ndarray:
    """Boolean mask of rows not dominated by any other row (maximization)."""
    n = scores.shape[0]
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        if not mask[i]:
            continue
        dominated = np.all(scores >= scores[i], axis=1) & np.any(
            scores > scores[i], axis=1
        )
        if dominated.any():
            mask[i] = False
    return mask

SYNC_STRATEGIES = ("pbo", "phcbo", "easybo-s", "easybo-sp", "bucb", "lp", "mace")

_DISPLAY = {
    "pbo": "pBO",
    "phcbo": "pHCBO",
    "easybo-s": "EasyBO-S",
    "easybo-sp": "EasyBO-SP",
    "bucb": "BUCB",
    "lp": "LP",
    "mace": "MACE",
}


class SynchronousBatchBO(BODriverBase):
    """Batch BO with a barrier between batches."""

    def __init__(
        self,
        problem,
        *,
        batch_size: int,
        strategy: str = "easybo-sp",
        lam: float = EASYBO_LAMBDA,
        ucb_kappa: float = 2.0,
        hc_d: float | None = None,
        **kwargs,
    ):
        super().__init__(problem, **kwargs)
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        strategy = strategy.lower()
        if strategy not in SYNC_STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; choose from {SYNC_STRATEGIES}"
            )
        self.batch_size = int(batch_size)
        self.strategy = strategy
        self.lam = float(lam)
        self.ucb_kappa = float(ucb_kappa)
        self.algorithm_name = f"{_DISPLAY[strategy]}-{batch_size}"
        self._hc = (
            HighCoveragePenalty(self.session.dim, d=hc_d)
            if strategy == "phcbo"
            else None
        )

    # -------------------------------------------------------------- selection
    def _select_batch(self, n_points: int) -> list[np.ndarray]:
        """Choose ``n_points`` query points for the next batch."""
        model = self.session.refit()
        if self.strategy == "pbo":
            return [
                self._propose(WeightedAcquisition(w), model=model)
                for w in pbo_weights(self.batch_size)[:n_points]
            ]
        if self.strategy == "phcbo":
            return self._select_phcbo(model, n_points)
        if self.strategy == "easybo-s":
            return [
                self._propose(
                    WeightedAcquisition(sample_easybo_weight(self.rng, self.lam)),
                    model=model,
                )
                for _ in range(n_points)
            ]
        if self.strategy == "easybo-sp":
            return self._select_hallucinated(
                n_points,
                lambda: WeightedAcquisition(sample_easybo_weight(self.rng, self.lam)),
            )
        if self.strategy == "bucb":
            return self._select_hallucinated(
                n_points, lambda: UpperConfidenceBound(self.ucb_kappa)
            )
        if self.strategy == "mace":
            return self._select_mace(model, n_points)
        return self._select_lp(model, n_points)

    def _select_mace(self, model, n_points: int) -> list[np.ndarray]:
        """Sample the batch from the Pareto front of an acquisition ensemble.

        MACE keeps batch diversity by drawing from the set of candidates that
        are non-dominated under (EI, PI, UCB) simultaneously; points that are
        good under *different* exploration/exploitation trade-offs all
        survive the filter.
        """
        best_std = self._standardized_best()
        acqs = (
            ExpectedImprovement(best_std),
            ProbabilityOfImprovement(best_std),
            UpperConfidenceBound(self.ucb_kappa),
        )
        U = self.rng.uniform(size=(max(self.acq_candidates, 4 * n_points), self.session.dim))
        scores = np.column_stack([acq(model, U) for acq in acqs])
        front = _pareto_front_mask(scores)
        front_idx = np.nonzero(front)[0]
        if len(front_idx) >= n_points:
            chosen = self.rng.choice(front_idx, size=n_points, replace=False)
        else:
            extra = self.rng.choice(len(U), size=n_points - len(front_idx), replace=False)
            chosen = np.concatenate([front_idx, extra])
        return [self.session.to_physical(U[i].reshape(1, -1))[0] for i in chosen]

    def _select_phcbo(self, model, n_points: int) -> list[np.ndarray]:
        """pBO weights plus the per-slot coverage penalty of Eq. 5/6.

        The penalty and the weighted acquisition are combined on the unit
        cube; each slot's chosen point is recorded for the next batches.
        """
        points = []
        for slot, w in enumerate(pbo_weights(self.batch_size)[:n_points]):
            base = WeightedAcquisition(w)

            def scorer(U, _slot=slot, _base=base):
                return _base(model, U) - self._hc(_slot, U)

            from repro.core.optimizers import maximize_acquisition

            u_best = maximize_acquisition(
                scorer,
                self.session.unit_bounds(),
                rng=self.rng,
                n_candidates=self.acq_candidates,
                n_restarts=self.acq_restarts,
            )
            self._hc.record(slot, u_best)
            points.append(self.session.to_physical(u_best.reshape(1, -1))[0])
        return points

    def _select_hallucinated(self, n_points: int, make_acq) -> list[np.ndarray]:
        """Greedy batch: each member sees earlier members as pending.

        This is the paper's penalization scheme (§III-C) applied at a
        synchronous barrier (EasyBO-SP), or BUCB when the acquisition is a
        fixed UCB.
        """
        points: list[np.ndarray] = []
        for _ in range(n_points):
            pending = np.vstack(points) if points else np.empty((0, self.session.dim))
            model = self.session.model_with_pending(pending)
            points.append(self._propose(make_acq(), model=model))
        return points

    def _select_lp(self, model, n_points: int) -> list[np.ndarray]:
        """Local penalization: multiply EI by penalty balls around batch points.

        The Lipschitz constant is estimated as the largest finite-difference
        gradient norm of the posterior mean over a random probe set
        (Gonzalez et al. 2016, eq. 11 simplified).
        """
        lipschitz = self._estimate_lipschitz(model)
        best_std = self._standardized_best()
        ei = ExpectedImprovement(best_std)
        points: list[np.ndarray] = []
        unit_points: list[np.ndarray] = []

        def scorer(U):
            values = np.log(np.maximum(ei(model, U), 1e-40))
            for u_j in unit_points:
                mu_j, sigma_j = model.predict(u_j.reshape(1, -1))
                radius = np.linalg.norm(U - u_j[None, :], axis=1)
                z = (lipschitz * radius - (best_std - mu_j[0])) / np.maximum(
                    np.sqrt(2.0) * sigma_j[0], 1e-12
                )
                values += np.log(np.maximum(stats.norm.cdf(z), 1e-40))
            return values

        from repro.core.optimizers import maximize_acquisition

        for _ in range(n_points):
            u_best = maximize_acquisition(
                scorer,
                self.session.unit_bounds(),
                rng=self.rng,
                n_candidates=self.acq_candidates,
                n_restarts=self.acq_restarts,
            )
            unit_points.append(u_best)
            points.append(self.session.to_physical(u_best.reshape(1, -1))[0])
        return points

    def _estimate_lipschitz(self, model, n_probes: int = 256) -> float:
        """Max-norm finite-difference gradient of the posterior mean."""
        d = self.session.dim
        U = self.rng.uniform(size=(n_probes, d))
        eps = 1e-4
        mu0 = model.predict(U, return_std=False)
        grad_sq = np.zeros(n_probes)
        for j in range(d):
            shifted = U.copy()
            shifted[:, j] = np.minimum(shifted[:, j] + eps, 1.0)
            mu1 = model.predict(shifted, return_std=False)
            grad_sq += ((mu1 - mu0) / eps) ** 2
        lipschitz = float(np.sqrt(grad_sq.max()))
        return max(lipschitz, 1e-6)

    # -------------------------------------------------------------- main loop
    def _resume_config(self) -> dict:
        config = super()._resume_config()
        config.update(lam=self.lam, ucb_kappa=self.ucb_kappa)
        return config

    def _journal_batch(self, batch_index: int, points) -> None:
        """Journal a selected batch *before* any of it is submitted.

        Selection consumes RNG for the whole batch up front, so a crash
        between two submits of the same batch must not re-select: replay
        re-submits the journaled points with the journaled post-selection
        RNG state instead.
        """
        if self._journal is None:
            return
        self._journal.append(
            {
                "type": "batch",
                "batch": int(batch_index),
                "points": [[float(v) for v in np.asarray(p).ravel()] for p in points],
                "rng_state": rng_state_to_dict(self.rng),
                "surrogate": self.session.snapshot(),
            }
        )

    def run(self) -> RunResult:
        pool = self._make_pool(self.batch_size)
        try:
            self._begin_run(self.batch_size)
            design = self._initial_design()
            self._journal_doe(design)
            return self._drive(pool, design, issued=0, batch_index=0, leftover=())
        finally:
            shutdown_pool(pool)

    def _resume_drive(self, pool, state) -> RunResult:
        design = state.design
        if design is None:
            design = self._initial_design()
            self._journal_doe(design)
        batch_index, leftover = self._resume_position(state, design, pool)
        return self._drive(pool, design, state.issued, batch_index, leftover)

    def _resume_position(self, state, design, pool):
        """Locate the crash inside the batch structure.

        Returns ``(batch_index, leftover)`` where ``leftover`` holds the
        already-selected points of the current batch that were never
        submitted (selection consumes RNG for the whole batch before the
        first submit, so they must be re-submitted, not re-selected).
        """
        issued = state.issued
        # A selected-but-not-fully-submitted BO batch takes precedence: its
        # selection already consumed the RNG, so its points must be
        # re-submitted, never re-selected.
        if state.last_batch is not None:
            b, points = state.last_batch
            submitted = state.batch_counts.get(b, 0)
            if submitted < len(points):
                return b, tuple(np.asarray(p, dtype=float) for p in points[submitted:])
        if issued == 0 and pool.busy_count == 0:
            return 0, ()
        if issued <= self.n_init and state.last_batch is None:
            current = (issued - 1) // self.batch_size
            batch_end = min((current + 1) * self.batch_size, self.n_init)
            if issued < batch_end:
                return current, tuple(design[issued:batch_end])
            if pool.busy_count:
                return current, ()
            return current + 1, ()
        # BO phase with the latest batch fully submitted.
        current = state.last_batch[0] if state.last_batch is not None else state.last_issue_batch
        if pool.busy_count:
            return current, ()
        return current + 1, ()

    def _drive(self, pool, design, issued: int, batch_index: int, leftover) -> RunResult:
        # Finish a partially-completed batch (resume only; no-op fresh).
        if leftover or pool.busy_count:
            for x in leftover:
                self._submit(pool, x, batch=batch_index)
                issued += 1
            while pool.busy_count:
                self._consume(pool, self._wait(pool))
            batch_index += 1
        # Initial design goes out in synchronous batches too.
        while issued < self.n_init:
            for x in design[issued : min(issued + self.batch_size, self.n_init)]:
                self._submit(pool, x, batch=batch_index)
                issued += 1
            while pool.busy_count:
                self._consume(pool, self._wait(pool))
            batch_index += 1
        while issued < self.max_evals:
            # One synchronous cycle: select a batch, issue it, barrier.
            with self.obs.span("iteration", batch=batch_index):
                n_points = min(self.batch_size, self.max_evals - issued)
                if self.session.n_observations < 2:
                    # Too many dropped failures for the GP: fall back to
                    # uniform exploration for this batch.
                    points = list(
                        random_design(self.problem.bounds, n_points, self.rng)
                    )
                else:
                    with self.obs.span("select-batch", n_points=n_points):
                        points = self._select_batch(n_points)
                self._journal_batch(batch_index, points)
                for x in points:
                    self._submit(pool, x, batch=batch_index)
                    issued += 1
                while pool.busy_count:
                    self._consume(pool, self._wait(pool))
            self.obs.inc("driver.iterations")
            batch_index += 1
        return self._package(pool)
