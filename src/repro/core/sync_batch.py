"""Synchronous batch Bayesian optimization (paper §II-C and ablations).

One driver, several batch-selection strategies:

* ``"pbo"``    — pBO [Hu et al. 2018]: B weighted acquisitions on a uniform
  weight grid, each maximized independently on the same GP (Eq. 4).
* ``"phcbo"``  — pBO plus the high-coverage distance penalty (Eq. 5/6).
* ``"easybo-s"``  — EasyBO's randomized weights, selected independently
  (ablation: new acquisition, no penalization).
* ``"easybo-sp"`` — randomized weights *with* the pending-point
  hallucination applied sequentially inside the batch (ablation: new
  acquisition + new penalization, synchronous issue).
* ``"bucb"``   — GP-BUCB [Desautels et al. 2014]: hallucinated UCB (extension).
* ``"lp"``     — local penalization [Gonzalez et al. 2016] around batch
  points using a Lipschitz estimate (extension).
* ``"mace"``   — simplified MACE [Lyu et al. 2018]: sample the batch from
  the Pareto front of the (EI, PI, UCB) acquisition ensemble (extension;
  the original uses a multi-objective evolutionary solver, we use a dense
  candidate sweep + non-dominated filtering).

All strategies share the synchronous schedule: the next batch is only issued
once every member of the previous batch has finished (the barrier the paper's
asynchronous scheme removes).

The hallucinating strategies (``easybo-sp``, ``bucb``) build each batch
member's model through :meth:`SurrogateSession.model_with_pending`, so in
the default ``surrogate_update="incremental"`` mode every greedy step is a
rank-k :class:`~repro.core.surrogate.HallucinatedView` over the cached
factor rather than a per-point posterior rebuild.
"""

from __future__ import annotations

import numpy as np

from repro.core.acquisition import EASYBO_LAMBDA
from repro.core.bo import BODriverBase, shutdown_pool
from repro.core.campaign import SyncBatchStrategy, _pareto_front_mask  # noqa: F401 — re-export
from repro.core.results import RunResult
from repro.utils.rng import rng_state_to_dict

__all__ = ["SynchronousBatchBO", "SYNC_STRATEGIES"]

SYNC_STRATEGIES = SyncBatchStrategy.STRATEGIES

_DISPLAY = {
    "pbo": "pBO",
    "phcbo": "pHCBO",
    "easybo-s": "EasyBO-S",
    "easybo-sp": "EasyBO-SP",
    "bucb": "BUCB",
    "lp": "LP",
    "mace": "MACE",
}


class SynchronousBatchBO(BODriverBase):
    """Batch BO with a barrier between batches."""

    def __init__(
        self,
        problem,
        *,
        batch_size: int,
        strategy: str = "easybo-sp",
        lam: float = EASYBO_LAMBDA,
        ucb_kappa: float = 2.0,
        hc_d: float | None = None,
        **kwargs,
    ):
        super().__init__(problem, **kwargs)
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        strategy = strategy.lower()
        if strategy not in SYNC_STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; choose from {SYNC_STRATEGIES}"
            )
        self.batch_size = int(batch_size)
        self.strategy = strategy
        self.lam = float(lam)
        self.ucb_kappa = float(ucb_kappa)
        self.algorithm_name = f"{_DISPLAY[strategy]}-{batch_size}"
        self.campaign.strategy = SyncBatchStrategy(
            strategy,
            batch_size=self.batch_size,
            lam=self.lam,
            ucb_kappa=self.ucb_kappa,
            hc_d=hc_d,
            dim=self.session.dim,
        )
        self.campaign.batch_size = self.batch_size
        self.campaign.algorithm = self.algorithm_name

    @property
    def _hc(self):
        """The pHCBO coverage-penalty state (lives on the strategy)."""
        return self.campaign.strategy._hc

    # -------------------------------------------------------------- selection
    def _select_batch(self, n_points: int) -> list[np.ndarray]:
        """Choose ``n_points`` query points for the next batch.

        Thin hook over :meth:`SyncBatchStrategy.select`; kept overridable
        for ablations that reshape the batch rule.
        """
        return self.campaign.strategy.select(self.campaign, n_points)

    def _estimate_lipschitz(self, model, n_probes: int = 256) -> float:
        """Delegate to the strategy's Lipschitz probe (kept for tests/ablations)."""
        return self.campaign.strategy._estimate_lipschitz(
            self.campaign, model, n_probes
        )

    # -------------------------------------------------------------- main loop
    def _resume_config(self) -> dict:
        config = super()._resume_config()
        config.update(lam=self.lam, ucb_kappa=self.ucb_kappa)
        return config

    def _journal_batch(self, batch_index: int, points) -> None:
        """Journal a selected batch *before* any of it is submitted.

        Selection consumes RNG for the whole batch up front, so a crash
        between two submits of the same batch must not re-select: replay
        re-submits the journaled points with the journaled post-selection
        RNG state instead.
        """
        if self._journal is None:
            return
        self._journal.append(
            {
                "type": "batch",
                "batch": int(batch_index),
                "points": [[float(v) for v in np.asarray(p).ravel()] for p in points],
                "rng_state": rng_state_to_dict(self.rng),
                "surrogate": self.session.snapshot(),
            }
        )

    def run(self) -> RunResult:
        pool = self._make_pool(self.batch_size)
        try:
            self._begin_run(self.batch_size)
            design = self._initial_design()
            self._journal_doe(design)
            self.campaign.begin(design)
            return self._drive(pool, batch_index=0, leftover=())
        finally:
            shutdown_pool(pool)

    def _resume_drive(self, pool, state) -> RunResult:
        design = state.design
        if design is None:
            design = self._initial_design()
            self._journal_doe(design)
        batch_index, leftover = self._resume_position(state, design, pool)
        self.campaign.restore(
            design=design, issued=state.issued, pending=pool.pending_points()
        )
        return self._drive(pool, batch_index, leftover)

    def _resume_position(self, state, design, pool):
        """Locate the crash inside the batch structure.

        Returns ``(batch_index, leftover)`` where ``leftover`` holds the
        already-selected points of the current batch that were never
        submitted (selection consumes RNG for the whole batch before the
        first submit, so they must be re-submitted, not re-selected).
        """
        issued = state.issued
        # A selected-but-not-fully-submitted BO batch takes precedence: its
        # selection already consumed the RNG, so its points must be
        # re-submitted, never re-selected.
        if state.last_batch is not None:
            b, points = state.last_batch
            submitted = state.batch_counts.get(b, 0)
            if submitted < len(points):
                return b, tuple(np.asarray(p, dtype=float) for p in points[submitted:])
        if issued == 0 and pool.busy_count == 0:
            return 0, ()
        if issued <= self.n_init and state.last_batch is None:
            current = (issued - 1) // self.batch_size
            batch_end = min((current + 1) * self.batch_size, self.n_init)
            if issued < batch_end:
                return current, tuple(design[issued:batch_end])
            if pool.busy_count:
                return current, ()
            return current + 1, ()
        # BO phase with the latest batch fully submitted.
        current = state.last_batch[0] if state.last_batch is not None else state.last_issue_batch
        if pool.busy_count:
            return current, ()
        return current + 1, ()

    def _drive(self, pool, batch_index: int, leftover) -> RunResult:
        campaign = self.campaign
        # Finish a partially-completed batch (resume only; no-op fresh).
        if leftover or pool.busy_count:
            for x in leftover:
                self._submit(pool, x, batch=batch_index)
                campaign.note_issued(x)
            while pool.busy_count:
                self._consume(pool, self._wait(pool))
            batch_index += 1
        # Initial design goes out in synchronous batches too.
        while campaign.in_doe:
            points = campaign.ask(
                min(self.batch_size, self.n_init - campaign.issued)
            )
            for x in points:
                self._submit(pool, x, batch=batch_index)
            while pool.busy_count:
                self._consume(pool, self._wait(pool))
            batch_index += 1
        while not campaign.exhausted:
            # One synchronous cycle: ask for a batch, issue it, barrier.
            with self.obs.span("iteration", batch=batch_index):
                n_points = min(self.batch_size, self.max_evals - campaign.issued)
                if self.session.n_observations < 2:
                    # Too many dropped failures for the GP: the campaign
                    # falls back to uniform exploration for this batch.
                    points = campaign.ask(n_points)
                else:
                    with self.obs.span("select-batch", n_points=n_points):
                        points = campaign.ask(n_points, _propose=self._select_batch)
                self._journal_batch(batch_index, points)
                for x in points:
                    self._submit(pool, x, batch=batch_index)
                while pool.busy_count:
                    self._consume(pool, self._wait(pool))
            self.obs.inc("driver.iterations")
            batch_index += 1
        return self._package(pool)
