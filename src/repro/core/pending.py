"""Pluggable pending-point policies for asynchronous proposals.

The paper's central design choice — Algorithm 1 lines 5-6 — hallucinates
still-pending points at their predictive means (Eq. 9) so the next proposal
steers away from busy locations.  Newer work disputes whether that machinery
is needed at all: Alvi et al. (arXiv:1901.10452) penalize the acquisition in
Lipschitz balls around pending points instead, pessimistic asynchronous
sampling (arXiv:2406.15291) hallucinates at *pessimistic* pseudo-values, and
"standard acquisition is sufficient" argues for doing nothing.  This module
turns that axis into a first-class extension point: a :class:`PendingPolicy`
decides (a) what posterior model the proposal pipeline maximizes over and
(b) how the acquisition itself is transformed, given the in-flight points.

``AsyncBatchStrategy`` consults the campaign's policy on every proposal, so
all four implementations compose unchanged with journals/resume, failure
policies, fault injection, and observability.  The default ``"hallucinate"``
policy reproduces the historical pipeline byte-for-byte (see
``tests/test_golden_trajectories.py``).

Policies are addressed by name::

    make_campaign("EasyBO-5", problem, pending_policy="lp")
    AsynchronousBatchBO(problem, batch_size=5, pending_policy="pessimistic")

or by label family (``EasyBO-LP-5`` / ``EasyBO-PESS-5`` / ``EasyBO-A-5``).
"""

from __future__ import annotations

import numpy as np
from scipy import stats

__all__ = [
    "PENDING_POLICIES",
    "PendingPolicy",
    "HallucinatePolicy",
    "StandardPolicy",
    "LocalPenalisationPolicy",
    "PessimisticPolicy",
    "make_pending_policy",
]


class PendingPolicy:
    """How an asynchronous proposal accounts for in-flight points.

    Subclasses override one (or both) of two hooks, called in this order by
    :class:`~repro.core.campaign.AsyncBatchStrategy.propose`:

    * :meth:`model` — the posterior model the acquisition is maximized over
      (default: the plain fitted model, pending ignored);
    * :meth:`wrap` — a transformation of the acquisition itself (default:
      unchanged).

    ``X_pending`` is always the campaign's pending matrix in *physical*
    coordinates ((k, dim), issue order); policies that work on the unit cube
    map it through ``session.transform.to_unit`` themselves.  ``rng`` is the
    campaign RNG — any draws a policy makes are part of the campaign's
    deterministic stream and therefore replay exactly on resume.
    """

    name = "base"

    def model(self, session, X_pending):
        """Posterior model to maximize the acquisition over."""
        return session.require_model()

    def wrap(self, session, model, acquisition, X_pending, *, rng=None):
        """Return the (possibly transformed) candidate scorer.

        The return value must be callable as ``scorer(model, U)`` over
        unit-cube candidate rows, like any
        :mod:`~repro.core.acquisition` object.
        """
        return acquisition

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class HallucinatePolicy(PendingPolicy):
    """The paper's Eq. 9: hallucinate pending points at predictive means.

    Delegates to :meth:`SurrogateSession.model_with_pending`, which picks the
    factor-sharing :class:`HallucinatedView` in ``"incremental"`` mode or the
    kriging-believer rebuild in ``"full"`` mode — exactly the historical
    pipeline, byte-for-byte.
    """

    name = "hallucinate"

    def model(self, session, X_pending):
        return session.model_with_pending(X_pending)


class StandardPolicy(PendingPolicy):
    """Plain standard acquisition: the pending set is ignored entirely.

    The asynchronous-sufficiency position (see PAPERS.md): thanks to the
    random Eq. 8 weight, consecutive proposals differ anyway, so no explicit
    diversity machinery is applied.  Equivalent to the historical
    ``EasyBO-A`` (``penalized=False``) configuration.
    """

    name = "none"


class LocalPenalisationPolicy(PendingPolicy):
    """Local penalisation around pending points (Gonzalez et al. 2016,
    as refined for the asynchronous setting by Alvi et al. 2019).

    The acquisition is maximized through a soft-plus transform with one
    multiplicative penalty ball per pending point::

        score(u) = log(softplus(acq(u))) + sum_j log phi_j(u)
        phi_j(u) = Phi( (L * ||u - u_j|| - (M - mu_j)) / (sqrt(2) sigma_j) )

    where ``L`` is a finite-difference Lipschitz estimate of the posterior
    mean, ``M`` the standardized incumbent best, and ``(mu_j, sigma_j)`` the
    posterior at pending point ``u_j``.  ``phi_j`` lies in ``(0, 1]`` and
    tends to 1 away from ``u_j``, so far from the pending set the penalised
    maximizer coincides with the plain one; the soft-plus makes the transform
    safe for acquisitions that take negative values (the weighted Eq. 8
    acquisition does, in standardized output scale).

    The posterior model itself is left untouched — only the acquisition
    surface is reshaped.
    """

    name = "lp"

    def __init__(self, *, n_probes: int = 256):
        self.n_probes = int(n_probes)

    @staticmethod
    def penalisation_factor(U, u_j, mu_j, sigma_j, lipschitz, best):
        """Per-candidate penalty factor ``phi_j`` for one pending point.

        Vectorized over candidate rows ``U``; clamped into ``(0, 1]`` so the
        log-space combination below never sees an exact zero.
        """
        U = np.atleast_2d(np.asarray(U, dtype=float))
        u_j = np.asarray(u_j, dtype=float).ravel()
        radius = np.linalg.norm(U - u_j[None, :], axis=1)
        z = (float(lipschitz) * radius - (float(best) - float(mu_j))) / max(
            np.sqrt(2.0) * float(sigma_j), 1e-12
        )
        return np.clip(stats.norm.cdf(z), 1e-300, 1.0)

    @staticmethod
    def estimate_lipschitz(model, dim, rng, n_probes: int = 256) -> float:
        """Max-norm finite-difference gradient of the posterior mean."""
        U = rng.uniform(size=(int(n_probes), int(dim)))
        eps = 1e-4
        mu0 = model.predict(U, return_std=False)
        grad_sq = np.zeros(len(U))
        for j in range(int(dim)):
            shifted = U.copy()
            shifted[:, j] = np.minimum(shifted[:, j] + eps, 1.0)
            mu1 = model.predict(shifted, return_std=False)
            grad_sq += ((mu1 - mu0) / eps) ** 2
        return max(float(np.sqrt(grad_sq.max())), 1e-6)

    def wrap(self, session, model, acquisition, X_pending, *, rng=None):
        X_pending = np.asarray(X_pending, dtype=float)
        if X_pending.size == 0:
            return acquisition
        rng = rng if rng is not None else np.random.default_rng(0)
        U_pending = session.transform.to_unit(X_pending)
        lipschitz = self.estimate_lipschitz(
            model, session.dim, rng, n_probes=self.n_probes
        )
        best = float(session.output.transform(np.array([session.best_y]))[0])
        mu_p, sigma_p = model.predict(U_pending)
        factor = self.penalisation_factor

        def penalised(inner_model, U):
            values = np.log(np.logaddexp(0.0, acquisition(inner_model, U)))
            for u_j, mu_j, sigma_j in zip(U_pending, mu_p, sigma_p):
                values += np.log(factor(U, u_j, mu_j, sigma_j, lipschitz, best))
            return values

        return penalised


class PessimisticPolicy(PendingPolicy):
    """Pessimistic asynchronous sampling (arXiv:2406.15291).

    Pending points are hallucinated not at their predictive means but at the
    pessimistic pseudo-value ``mu - beta * sigma``: the extended model's mean
    is pulled *down* near busy locations on top of the usual variance
    collapse.  For any acquisition that is non-decreasing in both the
    posterior mean and standard deviation (the Eq. 8 weighted acquisition,
    UCB, EI), the acquisition at a *single* pending point therefore never
    exceeds its no-pending baseline, and the spread never inflates anywhere
    for any pending set — the property-test sweep pins both invariants.
    (With several pending points the greedy pseudo-observations interact
    through the posterior covariance, so the per-point mean bound is only
    guaranteed against the model state each point was conditioned on.)

    ``beta=0`` degenerates to the kriging believer (Eq. 9 hallucination via
    the rebuild path).
    """

    name = "pessimistic"

    def __init__(self, *, beta: float = 1.0):
        if beta < 0:
            raise ValueError("beta must be >= 0")
        self.beta = float(beta)

    def condition_pessimistic(self, model, U_pending):
        """Copy of ``model`` extended with pessimistic pseudo-observations.

        Mirrors :meth:`GaussianProcess.condition_on_pending` (greedy, one
        border update per point) with ``mu - beta * sigma`` targets.
        """
        extended = model.copy()
        for u in np.atleast_2d(U_pending):
            mu, sigma = extended.predict(u.reshape(1, -1))
            extended.add_observation(u, float(mu[0] - self.beta * sigma[0]))
        return extended

    def model(self, session, X_pending):
        model = session.require_model()
        X_pending = np.asarray(X_pending, dtype=float)
        if X_pending.size == 0:
            return model
        U_pending = session.transform.to_unit(X_pending)
        return self.condition_pessimistic(model, U_pending)


#: Registry of selectable policies, in documentation order.
_POLICY_TYPES = {
    "hallucinate": HallucinatePolicy,
    "lp": LocalPenalisationPolicy,
    "pessimistic": PessimisticPolicy,
    "none": StandardPolicy,
}

PENDING_POLICIES = tuple(_POLICY_TYPES)


def make_pending_policy(spec) -> PendingPolicy:
    """Resolve a policy name or instance into a :class:`PendingPolicy`.

    Accepts a registry name (``"hallucinate"`` / ``"lp"`` / ``"pessimistic"``
    / ``"none"``), an existing policy instance (returned as-is), or ``None``
    (the default ``"hallucinate"``).
    """
    if spec is None:
        return HallucinatePolicy()
    if isinstance(spec, PendingPolicy):
        return spec
    if isinstance(spec, str):
        key = spec.strip().lower()
        if key in _POLICY_TYPES:
            return _POLICY_TYPES[key]()
        raise ValueError(
            f"unknown pending policy {spec!r}; choose from {PENDING_POLICIES}"
        )
    raise TypeError(
        f"pending_policy must be a name or PendingPolicy, got {type(spec).__name__}"
    )
