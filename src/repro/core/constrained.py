"""Constrained asynchronous batch BO — the paper's announced future work.

§II-A of the paper notes that EasyBO "can also be easily extended to handle
constrained optimization".  This module supplies that extension using the
standard probability-of-feasibility weighting [Gardner et al. 2014,
Gelbart et al. 2014]:

* each constraint ``c_i(x) >= 0`` gets its own GP surrogate, fitted on the
  same observations as the objective;
* the EasyBO acquisition (Eq. 9, including the busy-point hallucination) is
  multiplied by ``prod_i P(c_i(x) >= 0)`` computed from the constraint
  posteriors;
* the incumbent is the best *feasible* observation.

A :class:`ConstrainedProblem` reports constraint slacks alongside the FOM;
positive slack means satisfied.
"""

from __future__ import annotations

import abc
import dataclasses

import numpy as np
from scipy import stats

from repro.core.acquisition import EASYBO_LAMBDA, WeightedAcquisition, sample_easybo_weight
from repro.core.async_batch import AsynchronousBatchBO
from repro.core.problem import EvaluationResult, Problem
from repro.core.surrogate import SurrogateSession
from repro.gp import GaussianProcess, HyperparameterBounds, SquaredExponential, fit_hyperparameters
from repro.gp.standardize import OutputStandardizer

__all__ = ["ConstraintSpec", "ConstrainedProblem", "ConstrainedEasyBO"]


@dataclasses.dataclass(frozen=True)
class ConstraintSpec:
    """Declares one inequality constraint by name.

    The problem's ``evaluate`` must return ``constraints[name] = slack`` with
    the convention *slack >= 0 means satisfied* (e.g. ``gain_db - 60``).
    """

    name: str
    description: str = ""


class ConstrainedProblem(Problem):
    """A problem whose evaluations also report constraint slacks."""

    @property
    @abc.abstractmethod
    def constraint_specs(self) -> tuple[ConstraintSpec, ...]:
        """The declared constraints, in a fixed order."""

    def constraint_vector(self, result: EvaluationResult) -> np.ndarray:
        """Extract the slack vector from an evaluation, in spec order."""
        try:
            return np.asarray(
                [result.metrics[f"slack_{spec.name}"] for spec in self.constraint_specs]
            )
        except KeyError as exc:
            raise KeyError(
                f"evaluation is missing constraint slack {exc}; constrained "
                f"problems must report metrics['slack_<name>'] for every spec"
            ) from None


class _ConstraintModel:
    """GP surrogate of one constraint slack over the unit cube."""

    def __init__(self, dim: int, rng):
        self.dim = dim
        self.rng = rng
        self.output = OutputStandardizer()
        self.model: GaussianProcess | None = None
        self._bounds = HyperparameterBounds(dim)

    def fit(self, U: np.ndarray, slack: np.ndarray) -> None:
        z = self.output.fit_transform(slack)
        if self.model is None:
            self.model = GaussianProcess(
                kernel=SquaredExponential(self.dim, lengthscales=0.3),
                noise_variance=1e-4,
            )
            restarts = 2
        else:
            restarts = 1
        self.model.fit(U, z)
        fit_hyperparameters(self.model, bounds=self._bounds, n_restarts=restarts, rng=self.rng)

    def feasibility_probability(self, U: np.ndarray) -> np.ndarray:
        """``P(slack(x) >= 0)`` under the GP posterior."""
        mu, sigma = self.model.predict(U)
        # Standardized threshold for slack = 0.
        threshold = self.output.transform(np.zeros(1))[0]
        return stats.norm.cdf((mu - threshold) / np.maximum(sigma, 1e-12))


class ConstrainedEasyBO(AsynchronousBatchBO):
    """EasyBO with probability-of-feasibility constraint handling.

    The driver tracks a GP per constraint; the Eq. 9 acquisition value is
    shifted to be positive and multiplied by the joint feasibility
    probability, so infeasible regions are suppressed smoothly while the
    asynchronous machinery (busy-point hallucination included) is unchanged.
    """

    def __init__(self, problem: ConstrainedProblem, **kwargs):
        if not isinstance(problem, ConstrainedProblem):
            raise TypeError("ConstrainedEasyBO needs a ConstrainedProblem")
        super().__init__(problem, **kwargs)
        base = "cEasyBO"
        self.algorithm_name = (
            base if self.batch_size == 1 else f"{base}-{self.batch_size}"
        )
        self._constraint_models = [
            _ConstraintModel(self.session.dim, self.rng)
            for _ in problem.constraint_specs
        ]
        self._slacks: list[np.ndarray] = []

    # -------------------------------------------------------------- dataset
    def _absorb(self, completion) -> bool:
        added = super()._absorb(completion)
        if not added:
            return False
        if completion.result.ok:
            slack = self.problem.constraint_vector(completion.result)
        else:
            # Imputed failure: no metrics to read slacks from.  Treat the
            # point as maximally infeasible so the feasibility model also
            # steers away from it.
            slack = self._pessimistic_slack()
        self._slacks.append(slack)
        return True

    def _pessimistic_slack(self) -> np.ndarray:
        n = len(self._constraint_models)
        if self._slacks:
            worst = np.vstack(self._slacks).min(axis=0)
            return np.minimum(worst, -np.abs(worst) - 1.0)
        return np.full(n, -1.0)

    def _fit_constraints(self) -> None:
        U = self.session.transform.to_unit(self.session.X)
        slacks = np.vstack(self._slacks)
        for i, model in enumerate(self._constraint_models):
            model.fit(U, slacks[:, i])

    # ------------------------------------------------------------- proposal
    def _propose_async(self, pool) -> np.ndarray:
        if self.session.n_observations < 2:
            return self.campaign.cold_point()
        self.session.refit()
        self._fit_constraints()
        if self.penalized:
            model = self.session.model_with_pending(pool.pending_points())
        else:
            model = self.session.require_model()
        w = sample_easybo_weight(self.rng, self.lam)
        base = WeightedAcquisition(w)

        def scorer(U: np.ndarray) -> np.ndarray:
            values = base(model, U)
            # Shift to positive before weighting by feasibility, so the
            # product cannot reward infeasibility via negative values.
            values = values - values.min() + 1e-9
            for constraint in self._constraint_models:
                values = values * constraint.feasibility_probability(U)
            return values

        from repro.core.optimizers import maximize_acquisition

        u_best = maximize_acquisition(
            scorer,
            self.session.unit_bounds(),
            rng=self.rng,
            n_candidates=self.acq_candidates,
            n_restarts=self.acq_restarts,
        )
        return self.session.to_physical(u_best.reshape(1, -1))[0]

    # --------------------------------------------------------------- report
    def best_feasible(self) -> tuple[np.ndarray, float] | None:
        """Best observation with every constraint satisfied, if any."""
        if not self._slacks:
            return None
        slacks = np.vstack(self._slacks)
        feasible = np.all(slacks >= 0.0, axis=1)
        if not feasible.any():
            return None
        y = self.session.y
        X = self.session.X
        idx = int(np.argmax(np.where(feasible, y, -np.inf)))
        return X[idx].copy(), float(y[idx])
