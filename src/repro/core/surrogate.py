"""Surrogate-model session: transforms + GP + hyperparameter schedule.

Every BO driver owns one :class:`SurrogateSession`.  It normalizes the design
space to the unit cube and the observations to zero-mean/unit-variance, fits
the SE-ARD GP by ML-II (warm-started across refits), and exposes the pending-
point hallucination used by the paper's penalization scheme — all in one
place so the sequential, synchronous, and asynchronous drivers share exactly
the same modelling behaviour.

Three orthogonal knobs control what each dispatch costs:

* ``refit_every=K`` — ML-II hyperparameter fitting runs on the first refit
  and then every K-th refit; in between the hyperparameters are frozen.
* ``surrogate_update`` — how frozen-hyperparameter refits update the
  factored system: ``"full"`` rebuilds the kernel matrix and its Cholesky
  factor from scratch (O(n^3) per event), ``"incremental"`` performs a
  rank-k append to the cached factor (O(n^2 k) per event) and falls back to
  a full refactorization automatically if the append loses positive
  definiteness.  Both modes compute the *same* posterior up to floating-
  point round-off — `tests/test_incremental_equivalence.py` enforces ≤1e-8.
* ``surrogate`` — which posterior representation backs the session:
  ``"exact"`` (the paper's GP), ``"sparse"`` (the budgeted inducing-point
  posterior of :mod:`repro.gp.sparse`, O(m^2) per event independent of n),
  or ``"auto"`` (default: exact until ``max_exact_n`` observations, sparse
  after — see docs/surrogate_scaling.md).

In incremental mode the pending-point hallucination (Alg. 1 lines 5-6) is a
:class:`HallucinatedView`: the kriging-believer pseudo-observations are
appended to the factored system as one rank-k block and discarded by simply
dropping the view, never refactorizing the base model.
"""

from __future__ import annotations

import time

import numpy as np

from repro.gp import (
    BoxTransform,
    GaussianProcess,
    HyperparameterBounds,
    OutputStandardizer,
    SparseGaussianProcess,
    SparseHallucinatedView,
    SquaredExponential,
    fit_hyperparameters,
    select_inducing,
)
from repro.gp import linalg
from repro.gp.gp import VARIANCE_FLOOR
from repro.sched.trace import SurrogateStats
from repro.utils.rng import as_generator
from repro.utils.validation import check_finite, check_matrix, check_vector

__all__ = [
    "SurrogateSession",
    "HallucinatedView",
    "SURROGATE_UPDATE_MODES",
    "SURROGATE_KINDS",
    "DEFAULT_MAX_EXACT_N",
    "DEFAULT_N_INDUCING",
]

#: Valid values for ``SurrogateSession(surrogate_update=...)``.
SURROGATE_UPDATE_MODES = ("incremental", "full")

#: Valid values for ``SurrogateSession(surrogate=...)``.
SURROGATE_KINDS = ("exact", "sparse", "auto")

#: ``surrogate="auto"`` switches to the sparse posterior past this many
#: observations — the point where exact O(n^3) refits start to dominate ask
#: latency (ROADMAP "scale the GP past n≈1000").
DEFAULT_MAX_EXACT_N = 1000

#: Default inducing-set budget for the sparse posterior.
DEFAULT_N_INDUCING = 256


class HallucinatedView:
    """Posterior view of a GP with pending points folded in, factor-shared.

    The kriging-believer construction (paper §III-C) appends each pending
    point with its own predictive mean as a pseudo-observation.  Because the
    pseudo-targets *are* the posterior means, the extended weight vector is
    exactly ``[alpha, 0]`` — the mean surface is unchanged — and only the
    variance needs the extended factor.  This view therefore stores just the
    border blocks of the extended Cholesky factor

        L_ext = [[L, 0], [B^T, L_p]],   B = L^{-1} k(X, X_p),
        L_p L_p^T = k(X_p, X_p) + sigma_n^2 I - B^T B

    sharing ``L`` with the base model: construction is O(n^2 k) with no copy
    and no refactorization, and discarding the pending points is dropping
    the view.  Equivalent to
    :meth:`~repro.gp.gp.GaussianProcess.condition_on_pending` up to
    round-off (enforced to ≤1e-8 by the equivalence harness).

    Raises
    ------
    numpy.linalg.LinAlgError
        When the pending block's Schur complement is not positive definite
        (near-duplicate pending points at tiny noise); callers fall back to
        the rebuild path.
    """

    def __init__(self, base: GaussianProcess, X_pending):
        X_pending = check_matrix(X_pending, "X_pending", cols=base.dim)
        if X_pending.shape[0] == 0:
            raise ValueError("HallucinatedView needs at least one pending point")
        check_finite(X_pending, "X_pending")
        self.base = base
        self._X_pending = X_pending.copy()
        lower = base.cholesky_factor
        cross = base.kernel(base.X, X_pending)  # (n, k)
        corner = base.kernel(X_pending) + base.noise_variance * np.eye(
            X_pending.shape[0]
        )
        self._B = linalg.solve_lower(lower, cross)  # (n, k)
        schur = corner - self._B.T @ self._B
        schur = 0.5 * (schur + schur.T)
        self._lower_p = np.linalg.cholesky(schur)  # raises LinAlgError

    # ---------------------------------------------------------- properties
    @property
    def dim(self) -> int:
        return self.base.dim

    @property
    def n_pending(self) -> int:
        return self._X_pending.shape[0]

    @property
    def n_train(self) -> int:
        """Size of the hallucinated training set (real + pending)."""
        return self.base.n_train + self.n_pending

    @property
    def X_pending(self) -> np.ndarray:
        return self._X_pending.copy()

    # ------------------------------------------------------------- predict
    def predict(self, X, return_std: bool = True):
        """Posterior mean (and the paper's sigma-hat) at the rows of ``X``.

        The mean equals the base model's mean exactly (kriging believer);
        the standard deviation is collapsed around the pending points.
        """
        X = check_matrix(X, "X", cols=self.dim)
        mu = self.base.predict(X, return_std=False)
        if not return_std:
            return mu
        k1 = self.base.kernel(self.base.X, X)  # (n, m)
        v1 = linalg.solve_lower(self.base.cholesky_factor, k1)
        k2 = self.base.kernel(self._X_pending, X)  # (k, m)
        v2 = linalg.solve_lower(self._lower_p, k2 - self._B.T @ v1)
        var = self.base.kernel.diag(X) - np.sum(v1**2, axis=0) - np.sum(v2**2, axis=0)
        sigma = np.sqrt(np.maximum(var, VARIANCE_FLOOR))
        return mu, sigma

    def discard(self) -> GaussianProcess:
        """Return the untouched base model (the pending points cost nothing
        to drop — no downdate, no refactorization ever happened)."""
        return self.base

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HallucinatedView(n_train={self.base.n_train}, "
            f"n_pending={self.n_pending})"
        )


class SurrogateSession:
    """Owns the GP surrogate over a physical design box.

    Parameters
    ----------
    bounds:
        Physical (optimizer-space) box bounds of the problem.
    rng:
        Stream used for hyperparameter restarts.
    n_restarts_first / n_restarts_refit:
        ML-II restarts for the very first fit and for warm-started refits.
    surrogate_update:
        ``"incremental"`` (default) reuses the cached Cholesky factor via
        rank-k appends between hyperparameter fits and serves pending-point
        hallucination through :class:`HallucinatedView`; ``"full"`` rebuilds
        everything from scratch each refit (the reference path the
        equivalence harness checks against).
    surrogate:
        Which posterior representation backs the session: ``"exact"`` (the
        paper's O(n^3) GP), ``"sparse"`` (the budgeted inducing-point
        posterior of :mod:`repro.gp.sparse`, an extension beyond the paper),
        or ``"auto"`` (default) — exact until ``max_exact_n`` observations,
        sparse after, so small campaigns keep the paper-exact behaviour and
        10k-evaluation campaigns keep bounded per-ask latency.
    max_exact_n:
        Observation count past which ``"auto"`` switches to the sparse
        posterior (at the next ML-II/switch refit).
    n_inducing:
        Inducing-set budget ``m`` for the sparse posterior; per-tell cost is
        O(m^2) independent of n.
    refit_every:
        Run ML-II hyperparameter fitting only every this-many refits
        (default 1 = every refit, the paper's behaviour).  In between, the
        kernel is frozen and refits only fold new observations in.
    obs:
        :class:`~repro.obs.Observability` facade used for ``fit`` /
        ``hallucinate`` profiling spans; defaults to the no-op
        :data:`~repro.obs.NULL_OBS`.
    """

    def __init__(self, bounds, *, rng=None, n_restarts_first: int = 3,
                 n_restarts_refit: int = 1, surrogate_update: str = "incremental",
                 surrogate: str = "auto", max_exact_n: int = DEFAULT_MAX_EXACT_N,
                 n_inducing: int = DEFAULT_N_INDUCING,
                 refit_every: int = 1, obs=None):
        surrogate_update = str(surrogate_update).lower()
        if surrogate_update not in SURROGATE_UPDATE_MODES:
            raise ValueError(
                f"unknown surrogate_update {surrogate_update!r}; "
                f"choose from {SURROGATE_UPDATE_MODES}"
            )
        surrogate = str(surrogate).lower()
        if surrogate not in SURROGATE_KINDS:
            raise ValueError(
                f"unknown surrogate {surrogate!r}; choose from {SURROGATE_KINDS}"
            )
        if int(refit_every) < 1:
            raise ValueError(f"refit_every must be >= 1, got {refit_every}")
        if int(max_exact_n) < 1:
            raise ValueError(f"max_exact_n must be >= 1, got {max_exact_n}")
        if int(n_inducing) < 1:
            raise ValueError(f"n_inducing must be >= 1, got {n_inducing}")
        self.transform = BoxTransform(bounds)
        self.rng = as_generator(rng)
        self.n_restarts_first = int(n_restarts_first)
        self.n_restarts_refit = int(n_restarts_refit)
        self.surrogate_update = surrogate_update
        self.surrogate = surrogate
        self.max_exact_n = int(max_exact_n)
        self.n_inducing = int(n_inducing)
        self.refit_every = int(refit_every)
        from repro.obs import NULL_OBS

        self.obs = obs if obs is not None else NULL_OBS
        self.output = OutputStandardizer()
        self.model: GaussianProcess | None = None
        self.stats = SurrogateStats()
        self._hyper_bounds = HyperparameterBounds(self.transform.dim)
        self._X = np.empty((0, self.transform.dim))
        self._y = np.empty(0)
        self._refit_countdown = 0  # 0 -> the next refit pays ML-II

    # ------------------------------------------------------------- dataset
    @property
    def dim(self) -> int:
        return self.transform.dim

    @property
    def n_observations(self) -> int:
        return len(self._y)

    @property
    def X(self) -> np.ndarray:
        """Observed designs in physical (optimizer-space) coordinates."""
        return self._X.copy()

    @property
    def y(self) -> np.ndarray:
        return self._y.copy()

    @property
    def best_index(self) -> int:
        if not len(self._y):
            raise RuntimeError("no observations yet")
        return int(np.argmax(self._y))

    @property
    def best_y(self) -> float:
        return float(self._y[self.best_index])

    @property
    def best_x(self) -> np.ndarray:
        return self._X[self.best_index].copy()

    def add(self, x, y_value: float) -> None:
        """Record one observation (does not refit — call :meth:`refit`).

        Rejects NaN/inf in either the point or the value: a poisoned
        observation would silently corrupt every subsequent GP fit, so
        failed evaluations must be imputed or dropped *before* this call
        (see :class:`~repro.core.faults.FailurePolicy`).
        """
        x = check_finite(check_vector(x, "x", size=self.dim), "x")
        y_value = float(y_value)
        if not np.isfinite(y_value):
            raise ValueError(
                f"observation must be finite, got {y_value!r}; failed "
                "evaluations must be imputed or dropped, never added raw"
            )
        self._X = np.vstack([self._X, x])
        self._y = np.append(self._y, y_value)

    def add_batch(self, X, y) -> None:
        X = check_finite(check_matrix(X, "X", cols=self.dim), "X")
        y = check_vector(y, "y", size=X.shape[0])
        if not np.all(np.isfinite(y)):
            raise ValueError(
                "observations must be finite; failed evaluations must be "
                "imputed or dropped, never added raw"
            )
        self._X = np.vstack([self._X, X])
        self._y = np.concatenate([self._y, y])

    # ------------------------------------------------------------- fitting
    @property
    def can_fit(self) -> bool:
        """Whether the GP has enough data to be (re)fitted."""
        return self.n_observations >= 2

    def refit(self) -> GaussianProcess | None:
        """(Re)fit the GP on all observations.

        Returns ``None`` with fewer than two observations instead of
        raising: drivers under a ``"drop"`` failure policy can reach a refit
        with a starved dataset mid-run, and must degrade to the DoE/prior
        exploration path rather than crash.

        Hyperparameters are tuned by warm-started ML-II on the first refit
        and then every ``refit_every``-th refit; other refits keep the
        kernel frozen and only fold new observations in — by a rank-k
        Cholesky append in ``"incremental"`` mode (with automatic fallback
        to a full refactorization on loss of positive definiteness), by a
        from-scratch rebuild in ``"full"`` mode.
        """
        if not self.can_fit:
            return None
        with self.obs.profile("fit", n=self.n_observations):
            started = time.perf_counter()
            U = self.transform.to_unit(self._X)
            z = self.output.fit_transform(self._y)
            switched = (
                self.model is not None
                and self.active_surrogate != self._target_kind()
            )
            if switched:
                # Crossing the auto threshold forces a rebuild in the new
                # representation regardless of the refit schedule.
                self.stats.n_mode_switches += 1
                self.obs.inc("surrogate.mode_switches")
            if self.model is None or self._refit_countdown <= 0 or switched:
                self._fit_ml2(U, z)
            elif self.surrogate_update == "incremental":
                self._fit_incremental(U, z)
            else:
                self.model.fit(U, z)
                self.stats.n_refactorizations += 1
            self._refit_countdown -= 1
            self.stats.n_refits += 1
            self.stats.refit_seconds.append(time.perf_counter() - started)
        return self.model

    def _target_kind(self) -> str:
        """Which posterior the *next* full fit should build."""
        if self.surrogate != "auto":
            return self.surrogate
        return "exact" if self.n_observations <= self.max_exact_n else "sparse"

    @property
    def active_surrogate(self) -> str | None:
        """Posterior kind currently backing the session (None before fit)."""
        if self.model is None:
            return None
        return "sparse" if isinstance(self.model, SparseGaussianProcess) else "exact"

    def _fit_ml2(self, U: np.ndarray, z: np.ndarray) -> None:
        """Full ML-II hyperparameter fit (warm-started after the first)."""
        if self._target_kind() == "sparse":
            self._fit_ml2_sparse(U, z)
            return
        if self.model is None:
            kernel = SquaredExponential(self.dim, lengthscales=0.3)
            self.model = GaussianProcess(kernel=kernel, noise_variance=1e-4)
            restarts = self.n_restarts_first
        else:
            if not isinstance(self.model, GaussianProcess):
                # Switching back from the sparse posterior: warm-start the
                # exact model from the sparse kernel's hyperparameters.
                self.model = GaussianProcess(
                    kernel=self.model.kernel.copy(),
                    noise_variance=self.model.noise_variance,
                )
            restarts = self.n_restarts_refit
        self.model.fit(U, z)
        fit_hyperparameters(
            self.model,
            bounds=self._hyper_bounds,
            n_restarts=restarts,
            rng=self.rng,
        )
        self.stats.n_full_fits += 1
        self._refit_countdown = self.refit_every

    def _fit_ml2_sparse(self, U: np.ndarray, z: np.ndarray) -> None:
        """ML-II + rebuild for the sparse posterior.

        Hyperparameters are tuned on an *exact* helper GP over the inducing
        subset (m points, so the ML-II inner loop is O(m^3) not O(n^3)),
        warm-started from the current kernel, then the sparse posterior is
        built over the full dataset at the fitted hyperparameters, reusing
        the subset's deterministic greedy selection as the inducing set.

        A quarter of the inducing budget is reserved for the incumbent best
        and the most recent observations: BO sampling concentrates around
        the incumbent basin, which pure space-filling selection would
        under-resolve exactly where the acquisition needs fidelity.
        """
        if self.model is None:
            kernel = SquaredExponential(self.dim, lengthscales=0.3)
            noise = 1e-4
            restarts = self.n_restarts_first
        else:
            kernel = self.model.kernel.copy()
            noise = self.model.noise_variance
            restarts = self.n_restarts_refit
        m = min(self.n_inducing, len(z))
        n_recent = max(m // 4, 1)
        include = [int(np.argmax(z))] + list(range(len(z) - 1, max(len(z) - 1 - n_recent, -1), -1))
        idx = select_inducing(U, m, include=include)
        helper = GaussianProcess(kernel=kernel, noise_variance=noise)
        helper.fit(U[idx], z[idx])
        fit_hyperparameters(
            helper,
            bounds=self._hyper_bounds,
            n_restarts=restarts,
            rng=self.rng,
        )
        model = SparseGaussianProcess(
            kernel=helper.kernel,
            noise_variance=helper.noise_variance,
            n_inducing=self.n_inducing,
        )
        model.fit(U, z, inducing_indices=idx)
        self.model = model
        self.stats.n_full_fits += 1
        self._refit_countdown = self.refit_every

    def _fit_incremental(self, U: np.ndarray, z: np.ndarray) -> None:
        """Fold new observations into the cached factor (frozen kernel)."""
        n_new = self.n_observations - self.model.n_train
        try:
            if n_new < 0:
                raise np.linalg.LinAlgError("dataset shrank; factor unusable")
            if n_new:
                # set_targets below replaces every target anyway, so skip
                # the append's own weight-vector solve (refresh_alpha=False
                # leaves the model inconsistent only within this block).
                self.model.update(U[-n_new:], z[-n_new:], refresh_alpha=False)
            # Re-standardization moved every target, not just the new ones;
            # the factor is target-independent so this is one O(n^2) solve.
            self.model.set_targets(z)
            self.stats.n_incremental_updates += 1
        except np.linalg.LinAlgError:
            # The silent-corruption guard tripped: the appended block lost
            # positive definiteness and the model is rebuilt from scratch.
            # Surface it as a metric so operators can see how often the
            # incremental path degrades (satellite fix: this used to be
            # observable only through run-end stats).
            self.stats.n_fallbacks += 1
            self.obs.inc("surrogate.fallback_rebuilds")
            self.model.fit(U, z)
            self.stats.n_refactorizations += 1

    def require_model(self) -> GaussianProcess:
        if self.model is None or not self.model.is_fitted:
            raise RuntimeError("call refit() before using the surrogate")
        return self.model

    # ------------------------------------------------------------- recovery
    def snapshot(self) -> dict:
        """JSON-serializable hyperparameter/schedule state for the journal.

        Captures the *physical* kernel parameters (lengthscales, variance,
        noise variance) rather than log-space theta: JSON round-trips floats
        exactly, so restoring avoids the one-ulp drift an ``exp(log(x))``
        round-trip could introduce and keeps warm-started ML-II bit-exact.
        The training set itself is not captured — it is replayed from the
        journal's completion records.
        """
        snap = {
            "countdown": int(self._refit_countdown),
            "stats": self.stats.as_dict(),
            "model": None,
        }
        if self.model is not None:
            snap["model"] = {
                "lengthscales": [float(v) for v in self.model.kernel.lengthscales],
                "variance": float(self.model.kernel.variance),
                "noise_variance": float(self.model.noise_variance),
                "kind": self.active_surrogate,
                "n_inducing": int(self.n_inducing),
            }
            if isinstance(self.model, SparseGaussianProcess) and self.model.is_fitted:
                # The inducing set is part of the posterior, not a derived
                # quantity: the session seeds it with the incumbent and the
                # most recent points, so a restore that re-ran the plain
                # greedy selection would rebuild a *different* posterior.
                snap["model"]["inducing_indices"] = [
                    int(i) for i in self.model.posterior_state.inducing_indices
                ]
        return snap

    def restore_snapshot(self, snap: dict | None) -> None:
        """Restore hyperparameters, refit schedule, and stats from a snapshot.

        Must be called *after* the observations have been replayed into the
        session: the model is re-fitted on the current dataset at the
        restored hyperparameters, which reproduces exactly what the next
        ``"full"``-mode refit (or ML-II warm start) of the uninterrupted run
        would compute.  In ``"incremental"`` mode the rebuilt factor can
        differ from the crashed run's incrementally-updated one by round-off
        — within the tolerance the equivalence harness already grants that
        mode.
        """
        if snap is None:
            return
        self._refit_countdown = int(snap.get("countdown", 0))
        stats = snap.get("stats")
        if stats is not None:
            self.stats = SurrogateStats.from_dict(stats)
        params = snap.get("model")
        if params is None:
            self.model = None
            return
        kernel = SquaredExponential(
            self.dim,
            lengthscales=np.asarray(params["lengthscales"], dtype=float),
            variance=float(params["variance"]),
        )
        # Snapshots older than the sparse path carry no "kind" — they were
        # always exact.
        if str(params.get("kind", "exact")) == "sparse":
            self.model = SparseGaussianProcess(
                kernel=kernel,
                noise_variance=float(params["noise_variance"]),
                n_inducing=int(params.get("n_inducing", self.n_inducing)),
            )
        else:
            self.model = GaussianProcess(
                kernel=kernel, noise_variance=float(params["noise_variance"])
            )
        if self.can_fit:
            U = self.transform.to_unit(self._X)
            z = self.output.fit_transform(self._y)
            idx = params.get("inducing_indices")
            if (
                isinstance(self.model, SparseGaussianProcess)
                and idx is not None
                and all(0 <= int(i) < len(z) for i in idx)
            ):
                self.model.fit(U, z, inducing_indices=np.asarray(idx, dtype=int))
            else:
                self.model.fit(U, z)

    # ------------------------------------------------- pending hallucination
    def model_with_pending(self, X_pending):
        """GP with pending points hallucinated at their predictive means.

        This is lines 5-6 of Algorithm 1: the returned model's sigma-hat is
        collapsed around the busy locations, providing the diversity
        penalization of Eq. 9.  With no pending points the fitted model is
        returned unchanged.  In ``"incremental"`` mode the result is a
        :class:`HallucinatedView` over the cached factor (no copy, no
        refactorization); in ``"full"`` mode — or when the view loses
        positive definiteness — the legacy rebuild-per-point path is used.
        """
        model = self.require_model()
        X_pending = np.asarray(X_pending, dtype=float)
        if X_pending.size == 0:
            return model
        with self.obs.profile("hallucinate", k=int(np.atleast_2d(X_pending).shape[0])):
            started = time.perf_counter()
            U_pending = self.transform.to_unit(
                check_matrix(X_pending, "X_pending", cols=self.dim)
            )
            try:
                if isinstance(model, SparseGaussianProcess):
                    # The sparse hallucination is already factor-shared and
                    # O(m^2 k) in both update modes; a rank-1 update of a PD
                    # factor cannot lose positive definiteness, so there is
                    # no fallback path.
                    view = SparseHallucinatedView(model, U_pending)
                    self.stats.n_hallucinated_views += 1
                    return view
                if self.surrogate_update == "incremental":
                    try:
                        view = HallucinatedView(model, U_pending)
                        self.stats.n_hallucinated_views += 1
                        return view
                    except np.linalg.LinAlgError:
                        self.stats.n_fallbacks += 1
                        self.obs.inc("surrogate.fallback_rebuilds")
                self.stats.n_hallucinated_rebuilds += 1
                return model.condition_on_pending(U_pending)
            finally:
                self.stats.hallucination_seconds.append(
                    time.perf_counter() - started
                )

    # ------------------------------------------------------------ predict
    def predict_physical(self, X, model=None):
        """Posterior in physical units at physical-coordinate points."""
        model = model if model is not None else self.require_model()
        U = self.transform.to_unit(check_matrix(X, "X", cols=self.dim))
        mu, sigma = model.predict(U)
        return self.output.inverse_mean(mu), self.output.inverse_std(sigma)

    def acquisition_on_unit(self, acquisition, model=None):
        """Wrap an :class:`Acquisition` as a unit-cube candidate scorer.

        Returns a callable suitable for
        :func:`repro.core.optimizers.maximize_acquisition` over the unit cube.
        ``model`` may be a :class:`~repro.gp.GaussianProcess` or a
        :class:`HallucinatedView` — acquisitions only need ``predict``.
        """
        model = model if model is not None else self.require_model()

        def scorer(U: np.ndarray) -> np.ndarray:
            return acquisition(model, U)

        return scorer

    def unit_bounds(self) -> np.ndarray:
        return np.column_stack([np.zeros(self.dim), np.ones(self.dim)])

    def to_physical(self, U) -> np.ndarray:
        return self.transform.to_physical(U)
