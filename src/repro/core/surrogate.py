"""Surrogate-model session: transforms + GP + hyperparameter schedule.

Every BO driver owns one :class:`SurrogateSession`.  It normalizes the design
space to the unit cube and the observations to zero-mean/unit-variance, fits
the SE-ARD GP by ML-II (warm-started across refits), and exposes the pending-
point hallucination used by the paper's penalization scheme — all in one
place so the sequential, synchronous, and asynchronous drivers share exactly
the same modelling behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.gp import (
    BoxTransform,
    GaussianProcess,
    HyperparameterBounds,
    OutputStandardizer,
    SquaredExponential,
    fit_hyperparameters,
)
from repro.utils.rng import as_generator
from repro.utils.validation import check_finite, check_matrix, check_vector

__all__ = ["SurrogateSession"]


class SurrogateSession:
    """Owns the GP surrogate over a physical design box.

    Parameters
    ----------
    bounds:
        Physical (optimizer-space) box bounds of the problem.
    rng:
        Stream used for hyperparameter restarts.
    n_restarts_first / n_restarts_refit:
        ML-II restarts for the very first fit and for warm-started refits.
    """

    def __init__(self, bounds, *, rng=None, n_restarts_first: int = 3,
                 n_restarts_refit: int = 1):
        self.transform = BoxTransform(bounds)
        self.rng = as_generator(rng)
        self.n_restarts_first = int(n_restarts_first)
        self.n_restarts_refit = int(n_restarts_refit)
        self.output = OutputStandardizer()
        self.model: GaussianProcess | None = None
        self._hyper_bounds = HyperparameterBounds(self.transform.dim)
        self._X = np.empty((0, self.transform.dim))
        self._y = np.empty(0)

    # ------------------------------------------------------------- dataset
    @property
    def dim(self) -> int:
        return self.transform.dim

    @property
    def n_observations(self) -> int:
        return len(self._y)

    @property
    def X(self) -> np.ndarray:
        """Observed designs in physical (optimizer-space) coordinates."""
        return self._X.copy()

    @property
    def y(self) -> np.ndarray:
        return self._y.copy()

    @property
    def best_index(self) -> int:
        if not len(self._y):
            raise RuntimeError("no observations yet")
        return int(np.argmax(self._y))

    @property
    def best_y(self) -> float:
        return float(self._y[self.best_index])

    @property
    def best_x(self) -> np.ndarray:
        return self._X[self.best_index].copy()

    def add(self, x, y_value: float) -> None:
        """Record one observation (does not refit — call :meth:`refit`).

        Rejects NaN/inf in either the point or the value: a poisoned
        observation would silently corrupt every subsequent GP fit, so
        failed evaluations must be imputed or dropped *before* this call
        (see :class:`~repro.core.faults.FailurePolicy`).
        """
        x = check_finite(check_vector(x, "x", size=self.dim), "x")
        y_value = float(y_value)
        if not np.isfinite(y_value):
            raise ValueError(
                f"observation must be finite, got {y_value!r}; failed "
                "evaluations must be imputed or dropped, never added raw"
            )
        self._X = np.vstack([self._X, x])
        self._y = np.append(self._y, y_value)

    def add_batch(self, X, y) -> None:
        X = check_finite(check_matrix(X, "X", cols=self.dim), "X")
        y = check_vector(y, "y", size=X.shape[0])
        if not np.all(np.isfinite(y)):
            raise ValueError(
                "observations must be finite; failed evaluations must be "
                "imputed or dropped, never added raw"
            )
        self._X = np.vstack([self._X, X])
        self._y = np.concatenate([self._y, y])

    # ------------------------------------------------------------- fitting
    def refit(self) -> GaussianProcess:
        """(Re)fit the GP on all observations, tuning hyperparameters.

        Warm-starts from the previous kernel so per-iteration refits are one
        cheap L-BFGS run; the first fit uses extra random restarts.
        """
        if self.n_observations < 2:
            raise RuntimeError("need at least two observations to fit the GP")
        U = self.transform.to_unit(self._X)
        z = self.output.fit_transform(self._y)
        if self.model is None:
            kernel = SquaredExponential(self.dim, lengthscales=0.3)
            self.model = GaussianProcess(kernel=kernel, noise_variance=1e-4)
            restarts = self.n_restarts_first
        else:
            restarts = self.n_restarts_refit
        self.model.fit(U, z)
        fit_hyperparameters(
            self.model,
            bounds=self._hyper_bounds,
            n_restarts=restarts,
            rng=self.rng,
        )
        return self.model

    def require_model(self) -> GaussianProcess:
        if self.model is None or not self.model.is_fitted:
            raise RuntimeError("call refit() before using the surrogate")
        return self.model

    # ------------------------------------------------- pending hallucination
    def model_with_pending(self, X_pending) -> GaussianProcess:
        """GP with pending points hallucinated at their predictive means.

        This is lines 5-6 of Algorithm 1: the returned model's sigma-hat is
        collapsed around the busy locations, providing the diversity
        penalization of Eq. 9.  With no pending points the fitted model is
        returned unchanged.
        """
        model = self.require_model()
        X_pending = np.asarray(X_pending, dtype=float)
        if X_pending.size == 0:
            return model
        U_pending = self.transform.to_unit(check_matrix(X_pending, "X_pending", cols=self.dim))
        return model.condition_on_pending(U_pending)

    # ------------------------------------------------------------ predict
    def predict_physical(self, X, model: GaussianProcess | None = None):
        """Posterior in physical units at physical-coordinate points."""
        model = model if model is not None else self.require_model()
        U = self.transform.to_unit(check_matrix(X, "X", cols=self.dim))
        mu, sigma = model.predict(U)
        return self.output.inverse_mean(mu), self.output.inverse_std(sigma)

    def acquisition_on_unit(self, acquisition, model: GaussianProcess | None = None):
        """Wrap an :class:`Acquisition` as a unit-cube candidate scorer.

        Returns a callable suitable for
        :func:`repro.core.optimizers.maximize_acquisition` over the unit cube.
        """
        model = model if model is not None else self.require_model()

        def scorer(U: np.ndarray) -> np.ndarray:
            return acquisition(model, U)

        return scorer

    def unit_bounds(self) -> np.ndarray:
        return np.column_stack([np.zeros(self.dim), np.ones(self.dim)])

    def to_physical(self, U) -> np.ndarray:
        return self.transform.to_physical(U)
