"""Acquisition-function maximization.

The inner optimization of BO: a dense random-candidate sweep (cheap, batched
GP prediction) followed by L-BFGS-B polish from the best candidates.  For the
10-12 dimensional sizing spaces in the paper this hybrid is the standard
workhorse; a pure random mode is kept for tests and very cheap loops.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.utils.rng import as_generator
from repro.utils.validation import check_bounds

__all__ = ["maximize_acquisition"]


def maximize_acquisition(
    acq_values,
    bounds,
    *,
    rng=None,
    n_candidates: int = 2048,
    n_restarts: int = 4,
    polish: bool = True,
    maxiter: int = 60,
    obs=None,
) -> np.ndarray:
    """Return ``argmax`` of an acquisition over a box.

    Parameters
    ----------
    acq_values:
        Callable mapping a ``(n, d)`` array of candidates to ``(n,)``
        acquisition values.
    bounds:
        Box bounds, shape ``(d, 2)``.
    n_candidates:
        Size of the random sweep.
    n_restarts:
        Number of top candidates polished with L-BFGS-B.
    polish:
        Disable to use the sweep result directly.
    obs:
        Optional :class:`~repro.obs.Observability`: counts maximizations,
        polish restarts, and restarts that improved on the sweep.
    """
    bounds = check_bounds(bounds)
    if n_candidates < 1:
        raise ValueError("n_candidates must be >= 1")
    rng = as_generator(rng)
    d = bounds.shape[0]
    if obs is None:
        from repro.obs import NULL_OBS as obs  # noqa: N811 — facade singleton
    obs.inc("acquisition.maximizations")

    candidates = rng.uniform(bounds[:, 0], bounds[:, 1], size=(n_candidates, d))
    values = np.asarray(acq_values(candidates), dtype=float)
    if values.shape != (n_candidates,):
        raise ValueError(
            f"acquisition returned shape {values.shape}, expected ({n_candidates},)"
        )
    order = np.argsort(values)[::-1]

    best_x = candidates[order[0]]
    best_val = values[order[0]]
    if not polish:
        return best_x.copy()

    def negative(x: np.ndarray) -> float:
        val = float(acq_values(x.reshape(1, -1))[0])
        return -val if np.isfinite(val) else 1e30

    for start_idx in order[: max(1, n_restarts)]:
        obs.inc("acquisition.polish_restarts")
        result = optimize.minimize(
            negative,
            candidates[start_idx],
            method="L-BFGS-B",
            bounds=bounds,
            options={"maxiter": maxiter, "eps": 1e-8},
        )
        if np.all(np.isfinite(result.x)) and -result.fun > best_val:
            best_val = -result.fun
            best_x = result.x
            obs.inc("acquisition.polish_improvements")
    return np.clip(best_x, bounds[:, 0], bounds[:, 1])
