"""Asynchronous batch Bayesian optimization — EasyBO proper (paper §III, Alg. 1).

The loop is the paper's Algorithm 1:

1. keep B workers busy; **wait for any one** to finish (line 3);
2. fold the new observation into the dataset (line 4);
3. hallucinate the B-1 still-running points at their predictive means and
   refit sigma-hat around them (lines 5-6, the penalization scheme §III-C);
4. draw ``w = kappa/(kappa+1)``, ``kappa ~ U[0, lambda]``, and maximize
   ``(1-w) mu + w sigma_hat`` (Eq. 9) for the idle worker (line 7).

``penalized=False`` gives the EasyBO-A ablation (asynchronous issue, plain
sigma).  ``batch_size=1`` degenerates to sequential EasyBO.  Step 3's
pending-point handling is pluggable via ``pending_policy=`` (see
:mod:`repro.core.pending`): ``"hallucinate"`` (the default, Eq. 9),
``"lp"`` (local penalisation), ``"pessimistic"`` (pessimistic asynchronous
sampling), or ``"none"`` (standard acquisition, same as
``penalized=False``).

Step 3 is the hot path: in the default ``surrogate_update="incremental"``
mode the hallucinated model is a factor-sharing
:class:`~repro.core.surrogate.HallucinatedView` (one rank-(B-1) append to
the cached Cholesky factor, discarded for free), and with ``refit_every=K``
the step-2 refit pays ML-II only every K-th dispatch — between those, new
observations enter by rank-k factor updates instead of O(n^3) rebuilds.
"""

from __future__ import annotations

import numpy as np

from repro.core.acquisition import EASYBO_LAMBDA
from repro.core.bo import BODriverBase, shutdown_pool
from repro.core.campaign import AsyncBatchStrategy
from repro.core.results import RunResult

__all__ = ["AsynchronousBatchBO"]


class AsynchronousBatchBO(BODriverBase):
    """EasyBO (penalized) and EasyBO-A (unpenalized) asynchronous drivers."""

    #: Display base per pending-point policy; the label round-trips through
    #: ``make_algorithm`` (``EasyBO-LP-5`` parses back to the ``lp`` policy).
    _POLICY_BASES = {
        "hallucinate": "EasyBO",
        "none": "EasyBO-A",
        "lp": "EasyBO-LP",
        "pessimistic": "EasyBO-PESS",
    }

    def __init__(
        self,
        problem,
        *,
        batch_size: int,
        penalized: bool = True,
        lam: float = EASYBO_LAMBDA,
        pending_policy=None,
        **kwargs,
    ):
        super().__init__(problem, **kwargs)
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = int(batch_size)
        self.lam = float(lam)
        strategy = AsyncBatchStrategy(
            penalized=penalized, lam=self.lam, pending_policy=pending_policy
        )
        self.penalized = strategy.penalized
        self.pending_policy = strategy.pending_policy.name
        base = self._POLICY_BASES.get(
            self.pending_policy, f"EasyBO+{self.pending_policy}"
        )
        self.algorithm_name = base if batch_size == 1 else f"{base}-{batch_size}"
        self.campaign.strategy = strategy
        self.campaign.batch_size = self.batch_size
        self.campaign.algorithm = self.algorithm_name

    def _propose_async(self, pool) -> np.ndarray:
        """One Alg. 1 iteration of model refinement and point selection.

        Thin hook over :meth:`Campaign.propose` — the campaign's pending set
        mirrors ``pool.pending_points()`` point-for-point, so the Eq. 9
        hallucination sees the same matrix it always did.  Subclasses
        (constrained, cost-aware) override this to reshape the acquisition.
        """
        return self.campaign.propose()

    def _resume_config(self) -> dict:
        config = super()._resume_config()
        config.update(lam=self.lam, pending_policy=self.pending_policy)
        return config

    def run(self) -> RunResult:
        pool = self._make_pool(self.batch_size)
        try:
            self._begin_run(self.batch_size)
            design = self._initial_design()
            self._journal_doe(design)
            self.campaign.begin(design)
            return self._drive(pool)
        finally:
            shutdown_pool(pool)

    def _resume_drive(self, pool, state) -> RunResult:
        design = state.design
        if design is None:
            # Crashed before the DoE record was durable: redraw it (the RNG
            # was restored to the pre-draw state, so it is the same design).
            design = self._initial_design()
            self._journal_doe(design)
        self.campaign.restore(
            design=design, issued=state.issued, pending=pool.pending_points()
        )
        return self._drive(pool)

    def _drive(self, pool) -> RunResult:
        """Alg. 1 as an ask/tell loop, resumable at any boundary.

        ``refill`` is a fixpoint (fill every idle worker, budget permitting),
        so entering the loop with restored in-flight points behaves exactly
        as the uninterrupted run at the same boundary would.
        """
        campaign = self.campaign

        def refill() -> None:
            """Keep every idle worker busy (initial design first, then BO)."""
            while not campaign.exhausted and pool.idle_count > 0:
                if campaign.in_doe:
                    self._submit(pool, campaign.ask())
                else:
                    self._submit(
                        pool,
                        campaign.ask(_propose=lambda: self._propose_async(pool)),
                    )

        refill()
        iteration = 0
        while not campaign.exhausted:
            # One Alg. 1 cycle: wait for any worker, absorb, refill idle
            # slots (each refill nests fit/hallucinate/acquisition spans).
            with self.obs.span("iteration", index=iteration):
                self._consume(pool, self._wait(pool))
                refill()
            self.obs.inc("driver.iterations")
            iteration += 1
        while pool.busy_count:
            with self.obs.span("drain"):
                self._consume(pool, self._wait(pool))
        return self._package(pool)
