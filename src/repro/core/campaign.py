"""Ask/tell optimizer core — the paper's Algorithm 1 as a value, not a loop.

Every driver in this repo runs the same event cycle: wait for a worker, fold
the observation into the GP (Alg. 1 line 4), hallucinate the still-pending
points (lines 5-6, Eq. 9), maximize the weighted acquisition (line 7), issue
the winner.  Historically that cycle was fused into each driver's ``run()``,
so one process owned one run end-to-end.  :class:`Campaign` extracts it into
an explicit ask/tell object whose state is a value:

* :meth:`Campaign.ask` returns the next point(s) — initial-design rows first,
  then the family strategy's refit/hallucinate/acquisition pipeline
  (including the Eq. 9 pending-point penalization via
  :meth:`SurrogateSession.model_with_pending`);
* :meth:`Campaign.tell` folds one observation back in, applying the failure
  policy (impute / drop / budget-neutral orphan reissue).

The ``SequentialBO`` / ``AsynchronousBatchBO`` / ``SynchronousBatchBO``
drivers are thin loops over a Campaign (byte-for-byte equal to the golden
trajectories — see ``tests/test_campaign_equivalence.py``), and
:mod:`repro.distributed.server` serves many concurrent Campaigns over the
framed socket RPC, each with its own crash-safe journal.

Proposal logic lives in per-family strategy objects (:class:`SequentialStrategy`,
:class:`AsyncBatchStrategy`, :class:`SyncBatchStrategy`) so the same pipeline
backs both the embedded drivers and standalone campaigns.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.core.acquisition import (
    EASYBO_LAMBDA,
    ExpectedImprovement,
    HighCoveragePenalty,
    ProbabilityOfImprovement,
    UpperConfidenceBound,
    WeightedAcquisition,
    pbo_weights,
    sample_easybo_weight,
)
from repro.core.doe import random_design
from repro.core.faults import FailurePolicy
from repro.core.journal import JournalError, JournalWriter, recover_journal
from repro.core.optimizers import maximize_acquisition
from repro.core.pending import make_pending_policy
from repro.core.problem import STATUS_ORPHANED, Problem
from repro.core.surrogate import SurrogateSession
from repro.obs import NULL_OBS
from repro.utils.rng import as_generator, rng_state_to_dict, set_rng_state

__all__ = [
    "CAMPAIGN_JOURNAL_VERSION",
    "Campaign",
    "CampaignError",
    "CampaignExhausted",
    "SequentialStrategy",
    "AsyncBatchStrategy",
    "SyncBatchStrategy",
    "make_campaign",
    "resume_campaign",
    "read_campaign_journal",
]

#: Version stamp embedded in every ``campaign_start`` record.  Bump when the
#: campaign event schema changes incompatibly.
CAMPAIGN_JOURNAL_VERSION = 1

#: Bounded redraw budget for the cold-start dedupe: a fresh uniform draw
#: colliding with an in-flight point is measure-zero on a continuous domain,
#: so a handful of retries is already overkill — the bound only guards
#: degenerate (e.g. single-point) domains from spinning forever.
_COLD_REDRAW_ATTEMPTS = 32


class CampaignError(RuntimeError):
    """A campaign was driven outside its ask/tell contract."""


class CampaignExhausted(CampaignError):
    """``ask()`` was called after the evaluation budget was fully issued."""


def _pareto_front_mask(scores: np.ndarray) -> np.ndarray:
    """Boolean mask of rows not dominated by any other row (maximization)."""
    n = scores.shape[0]
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        if not mask[i]:
            continue
        dominated = np.all(scores >= scores[i], axis=1) & np.any(
            scores > scores[i], axis=1
        )
        if dominated.any():
            mask[i] = False
    return mask


# --------------------------------------------------------------------------
# Per-family proposal strategies.  Each receives the Campaign ("core") and
# uses only its public surface: session, rng, pending_matrix, maximize,
# standardized_best, cold_point.
# --------------------------------------------------------------------------
class SequentialStrategy:
    """One-at-a-time proposals with a pluggable acquisition rule."""

    kind = "sequential"

    def __init__(
        self,
        acquisition: str = "easybo",
        *,
        lam: float = EASYBO_LAMBDA,
        ucb_kappa: float = 2.0,
        ei_xi: float = 0.0,
    ):
        acquisition = acquisition.lower()
        if acquisition not in ("easybo", "ei", "pi", "lcb", "ucb"):
            raise ValueError(f"unknown acquisition {acquisition!r}")
        self.acquisition = acquisition
        self.lam = float(lam)
        self.ucb_kappa = float(ucb_kappa)
        self.ei_xi = float(ei_xi)

    def make_acquisition(self, core: "Campaign"):
        if self.acquisition == "easybo":
            return WeightedAcquisition(sample_easybo_weight(core.rng, self.lam))
        if self.acquisition == "ei":
            return ExpectedImprovement(core.standardized_best(), xi=self.ei_xi)
        if self.acquisition == "pi":
            return ProbabilityOfImprovement(core.standardized_best(), xi=self.ei_xi)
        return UpperConfidenceBound(self.ucb_kappa)

    def propose(self, core: "Campaign") -> np.ndarray:
        if core.session.n_observations < 2:
            # Failures (under a "drop" policy) can leave the GP with too
            # little data; explore uniformly until it has a footing.
            return core.cold_point()
        core.session.refit()
        return core.maximize(self.make_acquisition(core))

    def select(self, core: "Campaign", n_points: int) -> list[np.ndarray]:
        return [self.propose(core) for _ in range(n_points)]


class AsyncBatchStrategy:
    """The paper's Alg. 1 proposal with a pluggable pending-point policy.

    The policy decides how in-flight points shape the proposal: the default
    ``"hallucinate"`` folds them in at predictive means (lines 5-6, Eq. 9,
    byte-for-byte the historical pipeline), ``"lp"`` penalizes the
    acquisition in Lipschitz balls around them, ``"pessimistic"``
    hallucinates at ``mu - beta * sigma``, and ``"none"`` ignores them
    (standard acquisition, the historical ``penalized=False``).  See
    :mod:`repro.core.pending`.
    """

    kind = "async"

    def __init__(
        self,
        *,
        penalized: bool = True,
        lam: float = EASYBO_LAMBDA,
        pending_policy=None,
    ):
        if pending_policy is None:
            pending_policy = "hallucinate" if penalized else "none"
        self.pending_policy = make_pending_policy(pending_policy)
        self.penalized = self.pending_policy.name == "hallucinate"
        self.lam = float(lam)

    def propose(self, core: "Campaign") -> np.ndarray:
        if core.session.n_observations < 2:
            # The whole initial design may still be in flight (B >= n_init);
            # the GP has nothing to say yet, so explore uniformly — but never
            # re-issue a point that is already under evaluation.
            return core.cold_point()
        core.session.refit()
        policy = self.pending_policy
        pending = core.pending_matrix()
        model = policy.model(core.session, pending)
        w = sample_easybo_weight(core.rng, self.lam)
        acquisition = policy.wrap(
            core.session, model, WeightedAcquisition(w), pending, rng=core.rng
        )
        return core.maximize(acquisition, model=model)

    def select(self, core: "Campaign", n_points: int) -> list[np.ndarray]:
        # Greedy: each member sees the earlier ones as pending via the
        # campaign's own pending set (they were marked at ask time).
        return [self.propose(core) for _ in range(n_points)]


class SyncBatchStrategy:
    """Synchronous batch selection: pBO / pHCBO / EasyBO-S(P) / BUCB / LP / MACE."""

    kind = "sync"

    STRATEGIES = ("pbo", "phcbo", "easybo-s", "easybo-sp", "bucb", "lp", "mace")

    def __init__(
        self,
        strategy: str = "easybo-sp",
        *,
        batch_size: int = 1,
        lam: float = EASYBO_LAMBDA,
        ucb_kappa: float = 2.0,
        hc_d: float | None = None,
        dim: int | None = None,
    ):
        strategy = strategy.lower()
        if strategy not in self.STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; choose from {self.STRATEGIES}"
            )
        self.strategy = strategy
        self.batch_size = int(batch_size)
        self.lam = float(lam)
        self.ucb_kappa = float(ucb_kappa)
        self.hc_d = hc_d
        self._hc = (
            HighCoveragePenalty(dim, d=hc_d)
            if strategy == "phcbo" and dim is not None
            else None
        )

    def _coverage(self, core: "Campaign") -> HighCoveragePenalty:
        if self._hc is None:
            self._hc = HighCoveragePenalty(core.session.dim, d=self.hc_d)
        return self._hc

    def propose(self, core: "Campaign") -> np.ndarray:
        return self.select(core, 1)[0]

    def select(self, core: "Campaign", n_points: int) -> list[np.ndarray]:
        """Choose ``n_points`` query points for the next batch."""
        if core.session.n_observations < 2:
            # Too many dropped failures for the GP: fall back to uniform
            # exploration for this batch.
            return core.cold_block(n_points)
        model = core.session.refit()
        if self.strategy == "pbo":
            return [
                core.maximize(WeightedAcquisition(w), model=model)
                for w in pbo_weights(self.batch_size)[:n_points]
            ]
        if self.strategy == "phcbo":
            return self._select_phcbo(core, model, n_points)
        if self.strategy == "easybo-s":
            return [
                core.maximize(
                    WeightedAcquisition(sample_easybo_weight(core.rng, self.lam)),
                    model=model,
                )
                for _ in range(n_points)
            ]
        if self.strategy == "easybo-sp":
            return self._select_hallucinated(
                core,
                n_points,
                lambda: WeightedAcquisition(sample_easybo_weight(core.rng, self.lam)),
            )
        if self.strategy == "bucb":
            return self._select_hallucinated(
                core, n_points, lambda: UpperConfidenceBound(self.ucb_kappa)
            )
        if self.strategy == "mace":
            return self._select_mace(core, model, n_points)
        return self._select_lp(core, model, n_points)

    def _select_mace(self, core, model, n_points: int) -> list[np.ndarray]:
        """Sample the batch from the Pareto front of an acquisition ensemble.

        MACE keeps batch diversity by drawing from the set of candidates that
        are non-dominated under (EI, PI, UCB) simultaneously; points that are
        good under *different* exploration/exploitation trade-offs all
        survive the filter.
        """
        best_std = core.standardized_best()
        acqs = (
            ExpectedImprovement(best_std),
            ProbabilityOfImprovement(best_std),
            UpperConfidenceBound(self.ucb_kappa),
        )
        U = core.rng.uniform(
            size=(max(core.acq_candidates, 4 * n_points), core.session.dim)
        )
        scores = np.column_stack([acq(model, U) for acq in acqs])
        front = _pareto_front_mask(scores)
        front_idx = np.nonzero(front)[0]
        if len(front_idx) >= n_points:
            chosen = core.rng.choice(front_idx, size=n_points, replace=False)
        else:
            extra = core.rng.choice(
                len(U), size=n_points - len(front_idx), replace=False
            )
            chosen = np.concatenate([front_idx, extra])
        return [core.session.to_physical(U[i].reshape(1, -1))[0] for i in chosen]

    def _select_phcbo(self, core, model, n_points: int) -> list[np.ndarray]:
        """pBO weights plus the per-slot coverage penalty of Eq. 5/6.

        The penalty and the weighted acquisition are combined on the unit
        cube; each slot's chosen point is recorded for the next batches.
        """
        hc = self._coverage(core)
        points = []
        for slot, w in enumerate(pbo_weights(self.batch_size)[:n_points]):
            base = WeightedAcquisition(w)

            def scorer(U, _slot=slot, _base=base):
                return _base(model, U) - hc(_slot, U)

            u_best = maximize_acquisition(
                scorer,
                core.session.unit_bounds(),
                rng=core.rng,
                n_candidates=core.acq_candidates,
                n_restarts=core.acq_restarts,
            )
            hc.record(slot, u_best)
            points.append(core.session.to_physical(u_best.reshape(1, -1))[0])
        return points

    def _select_hallucinated(self, core, n_points: int, make_acq) -> list[np.ndarray]:
        """Greedy batch: each member sees earlier members as pending.

        This is the paper's penalization scheme (§III-C) applied at a
        synchronous barrier (EasyBO-SP), or BUCB when the acquisition is a
        fixed UCB.
        """
        points: list[np.ndarray] = []
        for _ in range(n_points):
            pending = (
                np.vstack(points) if points else np.empty((0, core.session.dim))
            )
            model = core.session.model_with_pending(pending)
            points.append(core.maximize(make_acq(), model=model))
        return points

    def _select_lp(self, core, model, n_points: int) -> list[np.ndarray]:
        """Local penalization: multiply EI by penalty balls around batch points.

        The Lipschitz constant is estimated as the largest finite-difference
        gradient norm of the posterior mean over a random probe set
        (Gonzalez et al. 2016, eq. 11 simplified).
        """
        lipschitz = self._estimate_lipschitz(core, model)
        best_std = core.standardized_best()
        ei = ExpectedImprovement(best_std)
        points: list[np.ndarray] = []
        unit_points: list[np.ndarray] = []

        def scorer(U):
            values = np.log(np.maximum(ei(model, U), 1e-40))
            for u_j in unit_points:
                mu_j, sigma_j = model.predict(u_j.reshape(1, -1))
                radius = np.linalg.norm(U - u_j[None, :], axis=1)
                z = (lipschitz * radius - (best_std - mu_j[0])) / np.maximum(
                    np.sqrt(2.0) * sigma_j[0], 1e-12
                )
                values += np.log(np.maximum(stats.norm.cdf(z), 1e-40))
            return values

        for _ in range(n_points):
            u_best = maximize_acquisition(
                scorer,
                core.session.unit_bounds(),
                rng=core.rng,
                n_candidates=core.acq_candidates,
                n_restarts=core.acq_restarts,
            )
            unit_points.append(u_best)
            points.append(core.session.to_physical(u_best.reshape(1, -1))[0])
        return points

    def _estimate_lipschitz(self, core, model, n_probes: int = 256) -> float:
        """Max-norm finite-difference gradient of the posterior mean."""
        d = core.session.dim
        U = core.rng.uniform(size=(n_probes, d))
        eps = 1e-4
        mu0 = model.predict(U, return_std=False)
        grad_sq = np.zeros(n_probes)
        for j in range(d):
            shifted = U.copy()
            shifted[:, j] = np.minimum(shifted[:, j] + eps, 1.0)
            mu1 = model.predict(shifted, return_std=False)
            grad_sq += ((mu1 - mu0) / eps) ** 2
        lipschitz = float(np.sqrt(grad_sq.max()))
        return max(lipschitz, 1e-6)


# --------------------------------------------------------------------------
# The Campaign itself.
# --------------------------------------------------------------------------
class Campaign:
    """Ask/tell Bayesian-optimization state.

    A Campaign owns the surrogate session, the RNG, the initial design, the
    set of in-flight (asked but not yet told) points, and the failure-policy
    bookkeeping.  It does **not** own workers: callers decide how asked
    points get evaluated — a driver submits them to a pool, a server hands
    them to remote clients.

    Parameters mirror the drivers'; ``journal`` attaches a standalone
    write-ahead journal (path or object with ``append``) recording every
    ask/tell so :func:`resume_campaign` can rebuild the exact state after a
    crash.  Embedded driver campaigns leave it ``None`` — the driver's own
    run journal is the durable record there.
    """

    def __init__(
        self,
        problem: Problem,
        strategy=None,
        *,
        n_init: int = 20,
        max_evals: int = 150,
        batch_size: int = 1,
        rng=None,
        failure_policy: FailurePolicy | None = None,
        acq_candidates: int = 2048,
        acq_restarts: int = 4,
        surrogate_update: str = "incremental",
        surrogate: str = "auto",
        max_exact_n: int | None = None,
        n_inducing: int | None = None,
        refit_every: int = 1,
        obs=None,
        session: SurrogateSession | None = None,
        journal=None,
        algorithm: str = "campaign",
        embedded: bool = False,
    ):
        if n_init < 2:
            raise ValueError("n_init must be >= 2 (the GP needs data)")
        if max_evals < n_init:
            raise ValueError("max_evals must be >= n_init")
        self.problem = problem
        self.strategy = strategy
        self.n_init = int(n_init)
        self.max_evals = int(max_evals)
        self.batch_size = int(batch_size)
        self.rng = as_generator(rng)
        self.failure_policy = failure_policy or FailurePolicy()
        self.acq_candidates = int(acq_candidates)
        self.acq_restarts = int(acq_restarts)
        self.obs = obs if obs is not None else NULL_OBS
        self.algorithm = algorithm
        surrogate_kwargs = {}
        if max_exact_n is not None:
            surrogate_kwargs["max_exact_n"] = int(max_exact_n)
        if n_inducing is not None:
            surrogate_kwargs["n_inducing"] = int(n_inducing)
        self.session = session or SurrogateSession(
            problem.bounds,
            rng=self.rng,
            surrogate_update=surrogate_update,
            surrogate=surrogate,
            refit_every=refit_every,
            obs=self.obs,
            **surrogate_kwargs,
        )
        self.design: np.ndarray | None = None
        self.issued = 0
        self.pending: list[np.ndarray] = []
        self.reissue_counts: dict[bytes, int] = {}
        self.last_action: tuple[str | None, float | None] = (None, None)
        self.finished = False
        self._pending_failure_action: str | None = None
        self._embedded = bool(embedded)
        self._config: dict = {}
        self._started = False
        if journal is None:
            self._journal, self._owns_journal = None, False
        elif hasattr(journal, "append"):
            self._journal, self._owns_journal = journal, False
        else:
            self._journal, self._owns_journal = JournalWriter(journal), True

    # ----------------------------------------------------------- properties
    @property
    def exhausted(self) -> bool:
        """Whole budget issued; only ``tell`` calls remain useful."""
        return self.issued >= self.max_evals

    @property
    def in_doe(self) -> bool:
        """Still serving initial-design rows."""
        return self.issued < self.n_init

    @property
    def done(self) -> bool:
        """Budget issued and every asked point told back."""
        return self.exhausted and not self.pending

    @property
    def n_pending(self) -> int:
        return len(self.pending)

    @property
    def n_observations(self) -> int:
        return self.session.n_observations

    def best(self) -> tuple[np.ndarray, float] | None:
        """Best observation so far, or ``None`` before any data."""
        if self.session.n_observations == 0:
            return None
        y = self.session.y
        idx = int(np.argmax(y))
        return self.session.X[idx].copy(), float(y[idx])

    def pending_matrix(self) -> np.ndarray:
        """In-flight points as an (k, dim) array in issue order.

        Mirrors ``pool.pending_points()`` in the embedded drivers: the same
        points in the same order, so the Eq. 9 hallucination sees an
        identical matrix whichever side supplies it.
        """
        if not self.pending:
            return np.empty((0, self.session.dim))
        return np.vstack(self.pending)

    # ------------------------------------------------------------ lifecycle
    def begin(self, design: np.ndarray) -> None:
        """Adopt an externally drawn initial design (embedded drivers)."""
        self.design = np.asarray(design, dtype=float)

    def start(self) -> np.ndarray:
        """Draw the initial design (idempotent); journals it when standalone."""
        if self.design is None:
            self._journal_start()
            self.design = random_design(self.problem.bounds, self.n_init, self.rng)
            self._journal_event(
                {
                    "type": "doe",
                    "design": [[float(v) for v in row] for row in self.design],
                    "rng_state": rng_state_to_dict(self.rng),
                }
            )
        return self.design

    def finish(self) -> None:
        """Journal the campaign end and release the journal sink."""
        if self.finished:
            return
        self.finished = True
        best = self.best()
        self._journal_event(
            {
                "type": "campaign_end",
                "issued": int(self.issued),
                "n_observations": int(self.session.n_observations),
                "best_fom": None if best is None else best[1],
            }
        )
        self.close()

    def close(self) -> None:
        """Release the journal sink without marking the campaign finished."""
        if self._owns_journal and self._journal is not None:
            self._journal.close()
            self._journal = None

    # ------------------------------------------------------------- ask/tell
    def ask(self, n: int | None = None, *, request_id: str | None = None,
            _propose=None):
        """Return the next point (``n=None``) or batch of ``n`` points.

        Initial-design rows are served first; afterwards the family strategy
        runs the refit/hallucinate/acquisition pipeline.  Asked points are
        tracked as pending until the matching :meth:`tell`.  ``request_id``
        rides along in the journal event so the campaign server can rebuild
        its idempotent reply cache after a restart (a retried ``ask`` whose
        reply was lost replays the journaled points instead of issuing new
        ones).  ``_propose`` lets the embedded drivers route proposals
        through their overridable hook methods; it is not part of the
        public surface.
        """
        if self.exhausted:
            raise CampaignExhausted(
                f"campaign {self.algorithm!r} has issued its whole budget "
                f"({self.max_evals} evaluations)"
            )
        self.start()
        if n is None:
            points = [self._one(_propose)]
        else:
            points = self._block(int(n), _propose)
        self._note_asked(points)
        if not self._embedded:
            self.obs.inc("campaign.asks")
            event = {
                "type": "ask",
                "points": [[float(v) for v in p] for p in points],
                "rng_state": rng_state_to_dict(self.rng),
                "surrogate": self.session.snapshot(),
            }
            if request_id is not None:
                event["request_id"] = str(request_id)
            self._journal_event(event)
        return points[0] if n is None else points

    def _one(self, propose) -> np.ndarray:
        if self.in_doe:
            return np.asarray(self.design[self.issued], dtype=float)
        if propose is not None:
            return np.asarray(propose(), dtype=float)
        return np.asarray(self.strategy.propose(self), dtype=float)

    def _block(self, n: int, propose) -> list[np.ndarray]:
        if n < 1:
            raise ValueError("ask(n) needs n >= 1")
        n = min(n, self.max_evals - self.issued)
        if self.in_doe:
            end = min(self.issued + n, self.n_init)
            return [np.asarray(row, dtype=float) for row in self.design[self.issued:end]]
        if propose is not None:
            points = propose(n)
        else:
            points = self.strategy.select(self, n)
        return [np.asarray(p, dtype=float) for p in points]

    def _note_asked(self, points) -> None:
        for p in points:
            self.pending.append(np.asarray(p, dtype=float).copy())
        self.issued += len(points)

    def note_issued(self, x) -> None:
        """Mark an externally selected point as issued (resume leftovers)."""
        self._note_asked([x])

    def tell(self, x, result, *, request_id: str | None = None) -> str:
        """Fold one evaluation result back in; returns the action taken.

        ``"added"`` (observation recorded), ``"imputed"`` (failure recorded
        at a pessimistic FOM), ``"dropped"`` (budget spent, posterior
        unchanged), or ``"reissued"`` (orphaned point kept pending — the
        caller should evaluate it again; budget-neutral).  ``request_id``
        is journaled with the event (see :meth:`ask`).

        Raises :class:`CampaignError` when ``x`` is not in the pending set —
        a point that was never asked, or one already told back.  Silently
        absorbing such a result would double-count budget and poison the
        pending bookkeeping every later hallucination reads.
        """
        x = np.asarray(x, dtype=float)
        if self._find_pending(x) is None:
            raise CampaignError(
                f"tell() for campaign {self.algorithm!r} got a point that is "
                f"not pending (never asked, or already told): {x.tolist()}"
            )
        if result.status == STATUS_ORPHANED and self.note_orphan(x):
            action = "reissued"
        else:
            self.absorb(x, result)
            action = self.last_action[0]
        if not self._embedded:
            self.obs.inc("campaign.tells")
            self._journal_tell(x, result, action, request_id=request_id)
        return action

    def note_orphan(self, x) -> bool:
        """Apply the orphan policy to ``x``; True means "evaluate it again".

        A reissued point moves to the end of the pending order, mirroring
        the fresh pool index a driver's budget-neutral resubmission gets.
        """
        policy = self.failure_policy
        key = np.asarray(x, dtype=float).tobytes()
        prior = self.reissue_counts.get(key, 0)
        if policy.on_orphan == "reissue" and prior < policy.max_reissues:
            self.reissue_counts[key] = prior + 1
            idx = self._find_pending(x)
            if idx is not None:
                self.pending.append(self.pending.pop(idx))
            return True
        self._pending_failure_action = (
            "impute" if policy.on_orphan == "reissue" else policy.on_orphan
        )
        return False

    def absorb(self, x, result) -> bool:
        """Fold a finished evaluation into the surrogate dataset.

        Failed evaluations follow the failure policy: ``"impute"`` records a
        pessimistic FOM at the failed point (so the surrogate steers away
        from it without poisoning the GP), ``"drop"`` records nothing — the
        budget slot is spent and the next proposal sees an unchanged
        posterior.  Returns True when an observation was added.
        """
        x = np.asarray(x, dtype=float)
        idx = self._find_pending(x)
        if idx is not None:
            del self.pending[idx]
        if result.ok:
            self.session.add(x, result.fom)
            self.last_action = ("added", float(result.fom))
            return True
        action = self._pending_failure_action or self.failure_policy.on_failure
        self._pending_failure_action = None
        if action == "impute" and self.session.n_observations > 0:
            value = self.imputed_fom()
            self.session.add(x, value)
            self.last_action = ("imputed", value)
            return True
        self.last_action = ("dropped", None)
        return False

    def imputed_fom(self) -> float:
        """Pessimistic stand-in FOM for a failed evaluation."""
        policy = self.failure_policy
        if policy.impute_value is not None:
            return float(policy.impute_value)
        y = self.session.y
        span = float(y.max() - y.min())
        return float(y.min() - policy.impute_margin * max(span, 1.0))

    def _find_pending(self, x) -> int | None:
        key = np.asarray(x, dtype=float).tobytes()
        for i, p in enumerate(self.pending):
            if p.tobytes() == key:
                return i
        return None

    # --------------------------------------------------- strategy utilities
    def propose(self) -> np.ndarray:
        """Run the family strategy once (without budget bookkeeping)."""
        return self.strategy.propose(self)

    def maximize(self, acquisition, model=None) -> np.ndarray:
        """Maximize an acquisition on the unit cube; return a physical point."""
        scorer = self.session.acquisition_on_unit(acquisition, model=model)
        with self.obs.span("acquisition-maximize"):
            u_best = maximize_acquisition(
                scorer,
                self.session.unit_bounds(),
                rng=self.rng,
                n_candidates=self.acq_candidates,
                n_restarts=self.acq_restarts,
                obs=self.obs,
            )
        return self.session.to_physical(u_best.reshape(1, -1))[0]

    def standardized_best(self) -> float:
        """Incumbent best in the GP's standardized output scale."""
        return float(
            self.session.output.transform(np.array([self.session.best_y]))[0]
        )

    def cold_point(self) -> np.ndarray:
        """A uniform exploration point that is not already in flight.

        The initial design (or a batch of cold draws) can still be pending
        when the GP has too little data to propose; drawing blindly here
        could hand the same point to two workers.  Collisions are
        measure-zero for a fresh uniform draw, so the dedupe consumes no
        extra RNG on the overwhelmingly common path.
        """
        x = random_design(self.problem.bounds, 1, self.rng)[0]
        for _ in range(_COLD_REDRAW_ATTEMPTS):
            if self._find_pending(x) is None:
                break
            self.obs.inc("campaign.cold_redraws")
            x = random_design(self.problem.bounds, 1, self.rng)[0]
        return x

    def cold_block(self, n: int) -> list[np.ndarray]:
        """A block of uniform exploration points, deduped against pending.

        The block is drawn in one RNG call (matching the historical
        synchronous cold path byte-for-byte when there are no collisions);
        only colliding rows pay a redraw.
        """
        block = random_design(self.problem.bounds, n, self.rng)
        seen = [p.tobytes() for p in self.pending]
        out: list[np.ndarray] = []
        for row in block:
            x = np.asarray(row, dtype=float)
            for _ in range(_COLD_REDRAW_ATTEMPTS):
                if x.tobytes() not in seen:
                    break
                self.obs.inc("campaign.cold_redraws")
                x = random_design(self.problem.bounds, 1, self.rng)[0]
            seen.append(x.tobytes())
            out.append(x)
        return out

    # ------------------------------------------------------------ journaling
    def _journal_event(self, record: dict) -> None:
        if self._journal is not None:
            self._journal.append(record)

    def _journal_start(self) -> None:
        if self._started:
            return
        self._started = True
        self._journal_event(
            {
                "type": "campaign_start",
                "campaign_version": CAMPAIGN_JOURNAL_VERSION,
                "algorithm": self.algorithm,
                "problem": self.problem.name,
                "config": dict(self._config),
                "rng_state": rng_state_to_dict(self.rng),
            }
        )

    def _journal_tell(self, x, result, action, *, request_id=None) -> None:
        if self._journal is None:
            return
        from repro.distributed.protocol import result_to_dict

        _, value = self.last_action if action != "reissued" else (None, None)
        event = {
            "type": "tell",
            "x": [float(v) for v in x],
            "result": result_to_dict(result),
            "action": action,
            "value": None if value is None else float(value),
            "done": self.done,
        }
        if request_id is not None:
            event["request_id"] = str(request_id)
        self._journal_event(event)

    # --------------------------------------------------------------- resume
    def restore(self, *, design=None, issued=0, pending=(), reissue_counts=None):
        """Overwrite the position bookkeeping (driver resume path)."""
        if design is not None:
            self.design = np.asarray(design, dtype=float)
        self.issued = int(issued)
        self.pending = [np.asarray(p, dtype=float).copy() for p in pending]
        if reissue_counts is not None:
            self.reissue_counts = dict(reissue_counts)
        return self


# --------------------------------------------------------------------------
# Label factory and journal resume.
# --------------------------------------------------------------------------
_SEQUENTIAL_FAMILIES = {"ei": "ei", "pi": "pi", "lcb": "lcb", "ucb": "ucb"}
#: Async label families and the pending policy each one implies.
_ASYNC_FAMILIES = {
    "easybo": "hallucinate",
    "easybo-a": "none",
    "easybo-lp": "lp",
    "easybo-pess": "pessimistic",
}
#: Display base per pending policy (inverse of ``_ASYNC_FAMILIES``).
_ASYNC_BASE_NAMES = {
    "hallucinate": "EasyBO",
    "none": "EasyBO-A",
    "lp": "EasyBO-LP",
    "pessimistic": "EasyBO-PESS",
}
_SYNC_FAMILIES = {
    "pbo": "pbo",
    "phcbo": "phcbo",
    "bucb": "bucb",
    "lp": "lp",
    "mace": "mace",
    "easybo-s": "easybo-s",
    "easybo-sp": "easybo-sp",
}


def make_campaign(label: str, problem: Problem, **kwargs) -> Campaign:
    """Build a standalone :class:`Campaign` from a paper-style label.

    Accepts the same labels as :func:`repro.core.easybo.make_algorithm` for
    the BO families (``"EasyBO-5"``, ``"pBO-3"``, ``"LCB"``, ...); the
    non-ask/tell baselines (DE, random search, portfolio) have no campaign
    form.  Keyword arguments are Campaign constructor kwargs plus the
    family knobs ``lam`` / ``ucb_kappa`` / ``ei_xi`` / ``hc_d`` and, for the
    asynchronous EasyBO family, ``pending_policy`` (a name from
    :data:`repro.core.pending.PENDING_POLICIES` or a policy instance) —
    equivalently spelled as a label: ``"EasyBO-LP-5"`` / ``"EasyBO-PESS-5"``
    / ``"EasyBO-A-5"``.
    """
    import re

    match = re.match(r"^(?P<family>[a-zA-Z][a-zA-Z-]*?)(?:-(?P<batch>\d+))?$", label.strip())
    if not match:
        raise ValueError(f"cannot parse algorithm label {label!r}")
    family = match.group("family").lower()
    batch = int(match.group("batch")) if match.group("batch") else 1
    lam = float(kwargs.pop("lam", EASYBO_LAMBDA))
    ucb_kappa = float(kwargs.pop("ucb_kappa", 2.0))
    ei_xi = float(kwargs.pop("ei_xi", 0.0))
    hc_d = kwargs.pop("hc_d", None)
    pending_policy = kwargs.pop("pending_policy", None)

    if family in _SEQUENTIAL_FAMILIES or (
        family == "easybo" and batch == 1 and pending_policy is None
    ):
        if pending_policy is not None:
            raise ValueError(
                "pending_policy applies to the asynchronous EasyBO family "
                f"only, not to {label!r}"
            )
        acq = _SEQUENTIAL_FAMILIES.get(family, "easybo")
        strategy = SequentialStrategy(
            acq, lam=lam, ucb_kappa=ucb_kappa, ei_xi=ei_xi
        )
        display = {"easybo": "EasyBO", "ei": "EI", "pi": "PI",
                   "lcb": "LCB", "ucb": "UCB"}[acq]
        algorithm = display
        batch = 1
    elif family in _ASYNC_FAMILIES:
        strategy = AsyncBatchStrategy(
            lam=lam,
            pending_policy=(
                pending_policy
                if pending_policy is not None
                else _ASYNC_FAMILIES[family]
            ),
        )
        policy_name = strategy.pending_policy.name
        base = _ASYNC_BASE_NAMES.get(policy_name, f"EasyBO+{policy_name}")
        algorithm = base if batch == 1 else f"{base}-{batch}"
    elif family in _SYNC_FAMILIES:
        if pending_policy is not None:
            raise ValueError(
                "pending_policy applies to the asynchronous EasyBO family "
                f"only, not to the synchronous {label!r}"
            )
        strategy = SyncBatchStrategy(
            _SYNC_FAMILIES[family],
            batch_size=batch,
            lam=lam,
            ucb_kappa=ucb_kappa,
            hc_d=hc_d,
        )
        display = {"pbo": "pBO", "phcbo": "pHCBO", "easybo-s": "EasyBO-S",
                   "easybo-sp": "EasyBO-SP", "bucb": "BUCB", "lp": "LP",
                   "mace": "MACE"}[_SYNC_FAMILIES[family]]
        algorithm = f"{display}-{batch}"
    else:
        raise ValueError(
            f"algorithm family {family!r} has no ask/tell campaign form"
        )

    policy = kwargs.pop("failure_policy", None)
    if isinstance(policy, dict):
        policy = FailurePolicy(**policy)
    campaign = Campaign(
        problem,
        strategy,
        batch_size=batch,
        failure_policy=policy,
        algorithm=algorithm,
        **kwargs,
    )
    campaign._config = {
        "n_init": campaign.n_init,
        "max_evals": campaign.max_evals,
        "acq_candidates": campaign.acq_candidates,
        "acq_restarts": campaign.acq_restarts,
        "surrogate_update": campaign.session.surrogate_update,
        "surrogate": campaign.session.surrogate,
        "max_exact_n": campaign.session.max_exact_n,
        "n_inducing": campaign.session.n_inducing,
        "refit_every": campaign.session.refit_every,
        "failure_policy": {
            k: getattr(campaign.failure_policy, k)
            for k in ("on_failure", "on_orphan", "max_reissues",
                      "impute_value", "impute_margin")
            if hasattr(campaign.failure_policy, k)
        },
        "lam": lam,
        "ucb_kappa": ucb_kappa,
        "ei_xi": ei_xi,
        "hc_d": hc_d,
    }
    if isinstance(strategy, AsyncBatchStrategy):
        # Journaled so resume rebuilds the same policy even when the label
        # alone would imply a different one.
        campaign._config["pending_policy"] = strategy.pending_policy.name
    return campaign


def read_campaign_journal(path) -> list[dict]:
    """Recover a campaign journal, validating its format version.

    Raises :class:`JournalError` when the file was written by a newer
    campaign format than this code can read, instead of misparsing it.
    """
    events = recover_journal(path)
    if not events or events[0].get("type") != "campaign_start":
        raise JournalError(
            f"{path} has no usable campaign_start record; nothing to resume"
        )
    version = events[0].get("campaign_version")
    if not isinstance(version, int) or version > CAMPAIGN_JOURNAL_VERSION:
        raise JournalError(
            f"campaign journal format v{version} is newer than supported "
            f"v{CAMPAIGN_JOURNAL_VERSION}; upgrade this installation to read it"
        )
    return events


def resume_campaign(journal_path, *, problem: Problem | None = None) -> Campaign:
    """Rebuild a campaign to its exact pre-crash state from its journal.

    Replays every ask/tell into a fresh campaign: told observations re-enter
    the surrogate in their original order (including imputed values), the
    hyperparameter snapshot and the bit-exact RNG state are restored from
    the last durable record, and asked-but-untold points come back as
    pending — the caller should evaluate and ``tell`` them (or let the
    orphan policy handle them).  Subsequent ``ask()`` calls produce the
    points the uninterrupted campaign would have produced.
    """
    from repro.core.problem import EvaluationResult  # noqa: F401  (doc pointer)
    from repro.distributed.protocol import result_from_dict

    events = read_campaign_journal(journal_path)
    start = events[0]
    if problem is None:
        from repro.core.recovery import resolve_problem

        problem = resolve_problem(start.get("problem", ""))
    config = dict(start.get("config", {}))
    campaign = make_campaign(
        start["algorithm"], problem, journal=journal_path, **config
    )
    campaign._started = True  # the start record is already durable
    set_rng_state(campaign.rng, start["rng_state"])

    snapshot = None
    rng_state = start.get("rng_state")
    finished = False
    for event in events[1:]:
        kind = event.get("type")
        if kind == "doe":
            campaign.design = np.asarray(event["design"], dtype=float)
            rng_state = event.get("rng_state", rng_state)
        elif kind == "ask":
            points = [np.asarray(p, dtype=float) for p in event["points"]]
            campaign._note_asked(points)
            rng_state = event.get("rng_state", rng_state)
            if event.get("surrogate") is not None:
                snapshot = event["surrogate"]
        elif kind == "tell":
            x = np.asarray(event["x"], dtype=float)
            action = event.get("action")
            if action == "reissued":
                key = x.tobytes()
                campaign.reissue_counts[key] = (
                    campaign.reissue_counts.get(key, 0) + 1
                )
                idx = campaign._find_pending(x)
                if idx is not None:
                    campaign.pending.append(campaign.pending.pop(idx))
                continue
            idx = campaign._find_pending(x)
            if idx is not None:
                del campaign.pending[idx]
            if action == "added":
                result = result_from_dict(event["result"])
                campaign.session.add(x, result.fom)
            elif action == "imputed":
                campaign.session.add(x, float(event["value"]))
        elif kind == "campaign_resume":
            continue
        elif kind == "campaign_end":
            finished = True
    if finished:
        raise RuntimeError(
            f"the campaign in {journal_path} already finished; nothing to resume"
        )
    campaign.session.restore_snapshot(snapshot)
    if rng_state is not None:
        set_rng_state(campaign.rng, rng_state)
    campaign._journal_event(
        {"type": "campaign_resume", "n_pending": campaign.n_pending}
    )
    return campaign
