"""Crash-safe write-ahead journal for optimization runs.

Every state transition of a Bayesian-optimization run (initial design, point
issue, completion, batch selection, checkpoint) is appended to a journal file
as one framed JSONL record.  The framing makes the log self-validating::

    J1 <length:8 hex> <crc32:8 hex> <compact JSON payload>\\n

``length`` is the byte length of the UTF-8 payload and ``crc32`` its checksum,
so a reader can detect a torn tail — the partial record a crash leaves behind
when the process dies mid-``write`` — and recover the longest valid prefix
instead of refusing the whole file.  Appends are flushed and ``fsync``'d by
default, which bounds the loss after a crash to at most the record being
written at that instant.

The journal is the source of truth for :func:`repro.core.recovery.resume`;
:mod:`repro.core.persistence` stores *finished* runs, this module stores
*in-flight* ones.
"""

from __future__ import annotations

import json
import os
import pathlib
import zlib

__all__ = [
    "JOURNAL_VERSION",
    "JournalError",
    "JournalWriter",
    "read_journal",
    "recover_journal",
    "frame_record",
    "parse_line",
    "frame_error",
]

#: Version stamp embedded in every ``run_start`` record.  Bump when the event
#: schema changes incompatibly.
JOURNAL_VERSION = 1

_MAGIC = "J1"
# "J1 " + 8 hex length + " " + 8 hex crc + " " -> 21 bytes of header.
_HEADER_LEN = len(_MAGIC) + 1 + 8 + 1 + 8 + 1


class JournalError(RuntimeError):
    """Raised for malformed journals when strict reading is requested."""


def frame_record(record: dict) -> bytes:
    """Encode ``record`` as one framed journal line."""
    payload = json.dumps(record, separators=(",", ":"), sort_keys=True)
    data = payload.encode("utf-8")
    crc = zlib.crc32(data) & 0xFFFFFFFF
    return f"{_MAGIC} {len(data):08x} {crc:08x} ".encode("ascii") + data + b"\n"


def parse_line(line: bytes) -> dict | None:
    """Decode one framed line, returning ``None`` if it is invalid or torn."""
    if len(line) < _HEADER_LEN + 1 or not line.startswith(_MAGIC.encode("ascii")):
        return None
    header = line[:_HEADER_LEN]
    try:
        magic, length_hex, crc_hex = header.decode("ascii").split(" ")[:3]
        length = int(length_hex, 16)
        crc = int(crc_hex, 16)
    except (UnicodeDecodeError, ValueError):
        return None
    if magic != _MAGIC:
        return None
    body = line[_HEADER_LEN:]
    if not body.endswith(b"\n"):
        return None
    data = body[:-1]
    if len(data) != length or (zlib.crc32(data) & 0xFFFFFFFF) != crc:
        return None
    try:
        record = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    return record if isinstance(record, dict) else None


def frame_error(line: bytes) -> str | None:
    """Why :func:`parse_line` rejects ``line``, or ``None`` when it is valid.

    The journal reader only needs the boolean (any invalid line ends the
    readable prefix), but the socket transport wants to *report* a corrupt
    frame — which byte stream invariant broke — so connection drops are
    diagnosable instead of generic.  Kept beside :func:`parse_line` so the
    two can never disagree about what counts as valid.
    """
    if not line.startswith(_MAGIC.encode("ascii")):
        return f"bad magic: expected {_MAGIC!r}, got {bytes(line[:2])!r}"
    if len(line) < _HEADER_LEN + 1:
        return f"short frame: {len(line)} bytes < {_HEADER_LEN + 1} minimum"
    header = line[:_HEADER_LEN]
    try:
        _, length_hex, crc_hex = header.decode("ascii").split(" ")[:3]
        length = int(length_hex, 16)
        crc = int(crc_hex, 16)
    except (UnicodeDecodeError, ValueError):
        return f"unparseable header {bytes(header)!r}"
    body = line[_HEADER_LEN:]
    if not body.endswith(b"\n"):
        return "torn frame: no trailing newline"
    data = body[:-1]
    if len(data) != length:
        return f"length mismatch: header says {length}, payload is {len(data)}"
    actual = zlib.crc32(data) & 0xFFFFFFFF
    if actual != crc:
        return f"crc mismatch: header {crc:08x}, computed {actual:08x}"
    try:
        record = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return "payload is not valid JSON"
    if not isinstance(record, dict):
        return f"payload is a {type(record).__name__}, not an object"
    return None


class JournalWriter:
    """Append-only framed-JSONL writer with durable (fsync'd) appends.

    Opens the file lazily in append mode, so creating a writer on an existing
    journal continues it — which is exactly what resuming a run needs.
    """

    def __init__(self, path: str | os.PathLike, *, fsync: bool = True) -> None:
        self.path = pathlib.Path(path)
        self.fsync = bool(fsync)
        self._fh = None
        self._n_appends = 0

    def _ensure_open(self):
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "ab")
        return self._fh

    def append(self, record: dict) -> None:
        """Frame, write, flush, and (optionally) fsync one record."""
        fh = self._ensure_open()
        fh.write(frame_record(record))
        fh.flush()
        if self.fsync:
            os.fsync(fh.fileno())
        self._n_appends += 1

    @property
    def n_appends(self) -> int:
        return self._n_appends

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _scan(raw: bytes) -> tuple[list[dict], int]:
    """Parse framed records from ``raw``; return (records, valid byte length)."""
    records: list[dict] = []
    offset = 0
    while offset < len(raw):
        newline = raw.find(b"\n", offset)
        if newline < 0:
            break  # torn tail: partial record with no terminator
        record = parse_line(raw[offset : newline + 1])
        if record is None:
            break
        records.append(record)
        offset = newline + 1
    return records, offset


def read_journal(path: str | os.PathLike, *, strict: bool = False) -> list[dict]:
    """Read a journal, returning the longest valid prefix of records.

    A crash can leave the final line torn (partial write) and, on rare
    filesystems, flip bytes in it.  By default any invalid line simply ends
    the readable prefix — everything before it is returned and everything
    after it is ignored, mirroring write-ahead-log recovery semantics.  With
    ``strict=True`` an invalid line raises :class:`JournalError` instead,
    which is useful in tests and integrity audits.  A missing file reads as
    an empty journal (nothing was ever durably written).
    """
    path = pathlib.Path(path)
    if not path.exists():
        return []
    with open(path, "rb") as fh:
        raw = fh.read()
    records, valid = _scan(raw)
    if strict and valid != len(raw):
        raise JournalError(f"invalid journal record at byte {valid} of {path}")
    return records


def recover_journal(path: str | os.PathLike) -> list[dict]:
    """Read a journal and truncate any torn tail in place.

    Resuming a run appends new records to the journal, so a torn partial
    record left by the crash must be physically removed first — otherwise the
    appended records would sit behind an unreadable line and be lost to the
    next recovery.  Returns the recovered records.
    """
    path = pathlib.Path(path)
    with open(path, "rb") as fh:
        raw = fh.read()
    records, valid = _scan(raw)
    if valid != len(raw):
        with open(path, "r+b") as fh:
            fh.truncate(valid)
            fh.flush()
            os.fsync(fh.fileno())
    return records
