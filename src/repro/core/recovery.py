"""Checkpoint/resume: replay a run journal and continue the run.

:func:`resume` is the recovery entry point.  It reads the longest valid
prefix of a :mod:`repro.core.journal` file (truncating any torn tail),
rebuilds the optimizer from the ``run_start`` record, replays every event to
reconstruct the exact state at the crash boundary — the GP training set, the
surrogate hyperparameters and refit schedule, the execution trace, the
simulated clock, and the bit-exact ``np.random.Generator`` state — reconciles
any points that were in flight when the process died, and hands control back
to the driver's resumable loop.

Resume-equivalence guarantee
----------------------------
On a deterministic problem, with the default ``on_orphan="reissue"`` policy
and ``surrogate_update="full"``, a run killed at *any* event and resumed from
its journal produces bit-for-bit the trajectory the uninterrupted run would
have produced: orphaned points are re-evaluated at their original index,
worker, and issue time, and every RNG draw after the crash boundary comes
from the restored generator state.  In ``"incremental"`` mode the rebuilt
Cholesky factor can differ from the crashed run's incrementally-updated one
by round-off, so equivalence holds to the same tolerance the incremental
mode's own equivalence harness grants.  With ``on_orphan="impute"``/"drop"``
(the right choice when evaluations are non-deterministic or expensive) the
resumed run deliberately diverges at the orphaned points but remains a valid
continuation: no budget is lost and ``wait_next`` can never wedge on a dead
worker.
"""

from __future__ import annotations

import dataclasses
import re

import numpy as np

from repro.core.bo import shutdown_pool
from repro.core.faults import FailurePolicy
from repro.core.journal import (
    JOURNAL_VERSION,
    JournalError,
    JournalWriter,
    recover_journal,
)
from repro.core.problem import STATUS_ORPHANED
from repro.core.results import RunResult
from repro.sched.trace import EvalRecord
from repro.utils.rng import set_rng_state

__all__ = ["resume", "replay_events", "ReplayState", "resolve_problem"]

_DIM_SUFFIX = re.compile(r"^([a-zA-Z]+?)(\d+)$")


def resolve_problem(name: str):
    """Rebuild a problem instance from its journaled ``name``.

    Synthetic benchmarks resolve through the factory registry (with a
    ``name<dim>`` suffix convention, e.g. ``sphere2``); the circuit
    testbenches resolve by their class defaults.  Anything else —
    custom problems, wrapped problems — must be passed to :func:`resume`
    explicitly via ``problem=``.
    """
    from repro.circuits import benchmarks

    try:
        return benchmarks.by_name(name)
    except (KeyError, TypeError):
        pass
    match = _DIM_SUFFIX.match(name)
    if match:
        try:
            return benchmarks.by_name(match.group(1), dim=int(match.group(2)))
        except (KeyError, TypeError):
            pass
    import repro.circuits as circuits

    for attr in (
        "OpAmpProblem",
        "ClassEProblem",
        "OtaProblem",
        "ConstrainedOpAmpProblem",
    ):
        cls = getattr(circuits, attr, None)
        if cls is None:
            continue
        try:
            instance = cls()
        except Exception:  # noqa: BLE001 — registry probing only
            continue
        if instance.name == name:
            return instance
    raise ValueError(
        f"cannot rebuild problem {name!r} from the journal alone; "
        "pass problem=... to resume()"
    )


@dataclasses.dataclass
class ReplayState:
    """Optimizer state reconstructed by :func:`replay_events`."""

    n_workers: int = 1
    design: np.ndarray | None = None
    issued: int = 0
    pending: dict = dataclasses.field(default_factory=dict)
    records: list = dataclasses.field(default_factory=list)
    clock: float = 0.0
    next_index: int = 0
    snapshot: dict | None = None
    rng_state: dict | None = None
    batch_counts: dict = dataclasses.field(default_factory=dict)
    last_issue_batch: int | None = None
    last_batch: tuple | None = None
    reissue_counts: dict = dataclasses.field(default_factory=dict)
    finished: bool = False


def replay_events(events: list[dict], session) -> ReplayState:
    """Fold journal events into a :class:`ReplayState`, feeding ``session``.

    Observations are replayed into the surrogate session exactly as the
    original ``_absorb`` calls recorded them (including imputed values), so
    the caller can afterwards restore the hyperparameter snapshot and refit.
    """
    state = ReplayState()
    for event in events:
        kind = event.get("type")
        if kind == "run_start":
            state.n_workers = int(event.get("n_workers", 1))
            state.rng_state = event.get("rng_state")
        elif kind == "doe":
            state.design = np.asarray(event["design"], dtype=float)
            state.rng_state = event.get("rng_state", state.rng_state)
        elif kind == "issue":
            index = int(event["index"])
            state.pending[index] = event
            state.next_index = max(state.next_index, index + 1)
            counts = bool(event.get("counts_budget", True))
            if counts:
                state.issued += 1
            batch = event.get("batch")
            if batch is not None:
                if counts:
                    state.batch_counts[batch] = state.batch_counts.get(batch, 0) + 1
                state.last_issue_batch = int(batch)
            state.clock = max(state.clock, float(event.get("issue_time", 0.0)))
            state.rng_state = event.get("rng_state", state.rng_state)
            if event.get("surrogate") is not None:
                state.snapshot = event["surrogate"]
        elif kind == "batch":
            state.last_batch = (int(event["batch"]), list(event["points"]))
            state.rng_state = event.get("rng_state", state.rng_state)
            if event.get("surrogate") is not None:
                state.snapshot = event["surrogate"]
        elif kind == "complete":
            record = EvalRecord.from_dict(event["record"])
            state.pending.pop(record.index, None)
            state.records.append(record)
            state.clock = max(state.clock, float(event.get("clock", record.finish_time)))
            action = event.get("action")
            if action == "added":
                session.add(record.x, record.fom)
            elif action == "imputed":
                session.add(record.x, float(event["value"]))
            elif action == "reissued":
                key = np.asarray(record.x, dtype=float).tobytes()
                state.reissue_counts[key] = state.reissue_counts.get(key, 0) + 1
        elif kind == "orphan":
            index = int(event["index"])
            disposition = event.get("disposition")
            if disposition == "reissue":
                issue = state.pending.get(index)
                if issue is not None:
                    key = np.asarray(issue["x"], dtype=float).tobytes()
                    state.reissue_counts[key] = state.reissue_counts.get(key, 0) + 1
                continue  # stays pending; reconciled again by this resume
            state.pending.pop(index, None)
            if event.get("record") is not None:
                record = EvalRecord.from_dict(event["record"])
                state.records.append(record)
                state.clock = max(state.clock, record.finish_time)
            if event.get("value") is not None:
                session.add(
                    np.asarray(event["record"]["x"], dtype=float),
                    float(event["value"]),
                )
        elif kind == "checkpoint":
            expected = int(event.get("n_observations", -1))
            if expected >= 0 and expected != session.n_observations:
                raise JournalError(
                    f"checkpoint expects {expected} observations but replay "
                    f"reconstructed {session.n_observations}"
                )
            state.rng_state = event.get("rng_state", state.rng_state)
        elif kind == "resume":
            continue
        elif kind == "run_end":
            state.finished = True
    return state


def _reconcile_orphans(driver, pool, state: ReplayState) -> None:
    """Classify every point that was in flight at the crash.

    ``on_orphan="reissue"`` re-evaluates the point at its original index /
    worker / issue time (budget-neutral; deterministic problems land exactly
    on the uninterrupted trajectory).  ``"impute"`` records a pessimistic
    observation, ``"drop"`` just counts the orphan; both spend the already-
    issued budget slot so a dead worker never wedges the run.
    """
    policy = driver.failure_policy
    for index in sorted(state.pending):
        issue = state.pending[index]
        x = np.asarray(issue["x"], dtype=float)
        key = x.tobytes()
        disposition = policy.on_orphan
        if (
            disposition == "reissue"
            and driver._reissue_counts.get(key, 0) >= policy.max_reissues
        ):
            disposition = "impute"
        if disposition == "impute" and driver.session.n_observations == 0:
            disposition = "drop"  # nothing to derive a pessimistic value from
        if disposition == "reissue":
            driver._reissue_counts[key] = driver._reissue_counts.get(key, 0) + 1
            # Journal the reissue BEFORE attempting it: if the re-evaluation
            # kills the process too, the next resume must see the spent
            # attempt, or a poisoned point would be reissued forever instead
            # of downgrading to impute after max_reissues.
            driver._journal_event(
                {"type": "orphan", "index": index, "disposition": "reissue"}
            )
            pool.restore_task(
                index,
                int(issue["worker"]),
                x,
                batch=issue.get("batch"),
                issue_time=float(issue["issue_time"]),
            )
            continue
        record = EvalRecord(
            index=index,
            worker=int(issue["worker"]),
            x=x,
            fom=float("nan"),
            issue_time=float(issue["issue_time"]),
            finish_time=max(state.clock, float(issue["issue_time"])),
            feasible=False,
            batch=issue.get("batch"),
            status=STATUS_ORPHANED,
            error="in flight at crash; reconciled at resume",
        )
        pool.trace.add(record)
        value = None
        if disposition == "impute":
            value = driver._imputed_fom()
            driver.session.add(x, value)
        driver._journal_event(
            {
                "type": "orphan",
                "index": index,
                "disposition": disposition,
                "value": value,
                "record": record.as_dict(),
            }
        )


def resume(journal_path, *, problem=None, pool_factory=None, tracer=None,
           metrics=None) -> RunResult:
    """Resume a crashed run from its write-ahead journal.

    Parameters
    ----------
    journal_path:
        The journal the crashed run was writing.  Any torn tail record is
        truncated in place; new events are appended to the same file, so a
        resumed run that crashes again can be resumed again.
    problem:
        The problem instance to evaluate.  Defaults to rebuilding it from the
        journaled name via :func:`resolve_problem`; required for custom or
        wrapped problems.
    pool_factory:
        Evaluation pool factory, as for the drivers.
    tracer / metrics:
        Observability sinks for the *resumed* portion of the run, as for the
        driver constructors.  Replayed journal events feed the trace /
        surrogate stats / pool telemetry (the durable sources of truth), and
        the metrics registry derives its totals from those once at packaging
        time — so the reported counters equal the uninterrupted run's and
        replayed events are never counted twice.

    Returns
    -------
    RunResult
        The completed run, with the pre-crash history replayed into its
        trace.
    """
    events = recover_journal(journal_path)
    if not events or events[0].get("type") != "run_start":
        raise JournalError(
            f"{journal_path} has no usable run_start record; nothing to resume"
        )
    start = events[0]
    version = start.get("journal_version")
    if isinstance(version, int) and version > JOURNAL_VERSION:
        raise JournalError(
            f"run journal format v{version} is newer than supported "
            f"v{JOURNAL_VERSION}; upgrade this installation to resume it"
        )
    if any(event.get("type") == "run_end" for event in events):
        raise RuntimeError(
            f"the run in {journal_path} already completed; nothing to resume"
        )
    if problem is None:
        problem = resolve_problem(start.get("problem", ""))

    from repro.core.easybo import make_algorithm

    config = dict(start.get("config", {}))
    policy_dict = config.pop("failure_policy", None)
    policy = FailurePolicy(**policy_dict) if policy_dict else None
    # Observability sinks are live objects, never journaled; pass them only
    # when given so algorithms without the kwargs keep resuming.
    if tracer is not None:
        config["tracer"] = tracer
    if metrics is not None:
        config["metrics"] = metrics
    driver = make_algorithm(
        start["algorithm"],
        problem,
        rng=0,  # placeholder stream; overwritten below with the journaled state
        pool_factory=pool_factory,
        failure_policy=policy,
        **config,
    )
    if not hasattr(driver, "_resume_drive"):
        raise ValueError(
            f"algorithm {start['algorithm']!r} does not support resume"
        )
    set_rng_state(driver.rng, start["rng_state"])

    state = replay_events(events, driver.session)
    driver.session.restore_snapshot(state.snapshot)
    if state.rng_state is not None:
        set_rng_state(driver.rng, state.rng_state)

    driver._begin_observability(state.n_workers, resumed=True)
    pool = driver._make_pool(state.n_workers)
    try:
        pool.restore(
            now=state.clock, next_index=state.next_index, records=state.records
        )

        driver._journal = JournalWriter(journal_path)
        driver._owns_journal = True
        driver._reissue_counts = dict(state.reissue_counts)
        driver._since_checkpoint = 0
        driver._journal_event(
            {"type": "resume", "n_pending": len(state.pending), "clock": state.clock}
        )
        _reconcile_orphans(driver, pool, state)
        return driver._resume_drive(pool, state)
    finally:
        shutdown_pool(pool)
