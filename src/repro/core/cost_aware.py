"""Cost-aware asynchronous EasyBO — optimize FOM *per simulation second*.

The paper motivates asynchrony with the observation that "different design
parameters can lead to different simulation time consumption" (§I).  Beyond
scheduling around that heterogeneity, one can *exploit* it: if two candidate
designs promise similar FOM but one simulates twice as fast, the fast one
buys more information per wall-clock second.

This driver fits a second GP to ``log(duration)`` and divides the EasyBO
acquisition (Eq. 9, hallucination included) by the predicted cost raised to a
``cost_exponent`` (Snoek et al. 2012's "expected improvement per second"
generalized to the weighted acquisition):

    alpha_cost(x, w) = alpha(x, w) / E[duration(x)]^cost_exponent

``cost_exponent = 0`` recovers plain EasyBO; 1 is full per-second
normalization.
"""

from __future__ import annotations

import numpy as np

from repro.core.acquisition import WeightedAcquisition, sample_easybo_weight
from repro.core.async_batch import AsynchronousBatchBO
from repro.gp import (
    GaussianProcess,
    HyperparameterBounds,
    OutputStandardizer,
    SquaredExponential,
    fit_hyperparameters,
)

__all__ = ["CostAwareEasyBO"]


class CostAwareEasyBO(AsynchronousBatchBO):
    """EasyBO whose acquisition is normalized by predicted evaluation cost."""

    def __init__(self, problem, *, cost_exponent: float = 1.0, **kwargs):
        super().__init__(problem, **kwargs)
        if cost_exponent < 0:
            raise ValueError("cost_exponent must be non-negative")
        self.cost_exponent = float(cost_exponent)
        base = "caEasyBO"
        self.algorithm_name = (
            base if self.batch_size == 1 else f"{base}-{self.batch_size}"
        )
        self._cost_model: GaussianProcess | None = None
        self._cost_output = OutputStandardizer()
        self._cost_bounds = HyperparameterBounds(self.session.dim)
        self._log_costs: list[float] = []

    # -------------------------------------------------------------- dataset
    def _absorb(self, completion) -> bool:
        added = super()._absorb(completion)
        if added:
            # Failed evaluations still report the (possibly truncated) time
            # they occupied the worker, which is exactly the cost to model.
            self._log_costs.append(float(np.log(max(completion.result.cost, 1e-9))))
        return added

    def _fit_cost_model(self) -> None:
        U = self.session.transform.to_unit(self.session.X)
        z = self._cost_output.fit_transform(np.asarray(self._log_costs))
        if self._cost_model is None:
            self._cost_model = GaussianProcess(
                kernel=SquaredExponential(self.session.dim, lengthscales=0.3),
                noise_variance=1e-2,
            )
            restarts = 2
        else:
            restarts = 1
        self._cost_model.fit(U, z)
        fit_hyperparameters(
            self._cost_model, bounds=self._cost_bounds, n_restarts=restarts,
            rng=self.rng,
        )

    def predicted_cost(self, U: np.ndarray) -> np.ndarray:
        """Expected duration (seconds) at unit-cube points."""
        if self._cost_model is None:
            raise RuntimeError("cost model not fitted yet")
        mu, sigma = self._cost_model.predict(U)
        log_mu = self._cost_output.inverse_mean(mu)
        log_sigma = self._cost_output.inverse_std(sigma)
        # Lognormal mean: exp(mu + sigma^2 / 2).
        return np.exp(log_mu + 0.5 * log_sigma**2)

    # ------------------------------------------------------------- proposal
    def _propose_async(self, pool) -> np.ndarray:
        if self.session.n_observations < 2:
            return self.campaign.cold_point()
        self.session.refit()
        self._fit_cost_model()
        if self.penalized:
            model = self.session.model_with_pending(pool.pending_points())
        else:
            model = self.session.require_model()
        w = sample_easybo_weight(self.rng, self.lam)
        base = WeightedAcquisition(w)
        exponent = self.cost_exponent

        def scorer(U: np.ndarray) -> np.ndarray:
            values = base(model, U)
            if exponent == 0.0:
                return values
            # Shift positive so dividing by cost cannot flip preferences.
            values = values - values.min() + 1e-9
            return values / self.predicted_cost(U) ** exponent

        from repro.core.optimizers import maximize_acquisition

        u_best = maximize_acquisition(
            scorer,
            self.session.unit_bounds(),
            rng=self.rng,
            n_candidates=self.acq_candidates,
            n_restarts=self.acq_restarts,
        )
        return self.session.to_physical(u_best.reshape(1, -1))[0]
