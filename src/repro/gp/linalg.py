"""Numerically robust linear algebra for Gaussian-process regression.

Everything in :mod:`repro.gp` funnels its matrix work through these helpers so
that the jitter policy (how much diagonal noise to add when a kernel matrix is
numerically singular) lives in exactly one place.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

__all__ = [
    "jittered_cholesky",
    "cholesky_solve",
    "cholesky_update",
    "cholesky_append",
    "cholesky_shrink",
    "cholesky_rank1_update",
    "cholesky_rank1_downdate",
    "cholesky_delete_row",
    "solve_lower",
    "log_det_from_cholesky",
]

#: First jitter magnitude tried when a Cholesky factorization fails.
INITIAL_JITTER = 1e-10

#: Jitter is escalated by this factor on each failed attempt.
JITTER_GROWTH = 10.0

#: Number of escalation attempts before giving up.
MAX_ATTEMPTS = 10


def jittered_cholesky(matrix: np.ndarray) -> tuple[np.ndarray, float]:
    """Lower Cholesky factor of ``matrix``, adding diagonal jitter if needed.

    Returns ``(L, jitter)`` where ``L @ L.T == matrix + jitter * I`` and
    ``jitter`` is the smallest value from an escalating schedule that made the
    factorization succeed (``0.0`` when none was needed).

    Raises
    ------
    numpy.linalg.LinAlgError
        If the matrix is not positive definite even after the maximum jitter.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"matrix must be square, got shape {matrix.shape}")
    if not np.all(np.isfinite(matrix)):
        raise np.linalg.LinAlgError("matrix contains non-finite entries")

    jitter = 0.0
    scale = float(np.mean(np.diag(matrix))) if matrix.shape[0] else 1.0
    scale = max(scale, 1.0)
    for attempt in range(MAX_ATTEMPTS + 1):
        try:
            lower = np.linalg.cholesky(
                matrix if jitter == 0.0 else matrix + jitter * np.eye(matrix.shape[0])
            )
            return lower, jitter
        except np.linalg.LinAlgError:
            jitter = scale * INITIAL_JITTER * (JITTER_GROWTH**attempt)
    raise np.linalg.LinAlgError(
        f"matrix not positive definite even with jitter {jitter:.3e}"
    )


def solve_lower(lower: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``L x = rhs`` for lower-triangular ``L``.

    ``check_finite=False``: every factor passed here was produced by this
    module (which rejects non-finite input up front), so scipy's O(n^2)
    finiteness scan per call would only re-check known-good data on the
    incremental hot path.
    """
    return sla.solve_triangular(lower, rhs, lower=True, check_finite=False)


def cholesky_solve(lower: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``(L L^T) x = rhs`` given the lower Cholesky factor ``L``.

    ``check_finite=False`` for the same reason as :func:`solve_lower`.
    """
    return sla.cho_solve((lower, True), rhs, check_finite=False)


def log_det_from_cholesky(lower: np.ndarray) -> float:
    """``log det(L L^T)`` computed stably from the factor's diagonal."""
    return 2.0 * float(np.sum(np.log(np.diag(lower))))


def cholesky_update(
    lower: np.ndarray, cross: np.ndarray, corner: float
) -> np.ndarray:
    """Extend a Cholesky factor by one row/column.

    Given ``L`` with ``L L^T = K`` and a new point whose covariance against the
    existing points is ``cross`` (length n) with self-covariance ``corner``,
    return the factor of the bordered matrix ``[[K, cross], [cross^T, corner]]``.

    This is the O(n^2) incremental update used when hallucinating busy points
    one at a time during batch selection.
    """
    lower = np.asarray(lower, dtype=float)
    cross = np.asarray(cross, dtype=float).ravel()
    n = lower.shape[0]
    if cross.shape[0] != n:
        raise ValueError(f"cross must have length {n}, got {cross.shape[0]}")
    row = solve_lower(lower, cross) if n else np.empty(0)
    diag2 = float(corner) - float(row @ row)
    if diag2 <= 0.0:
        # The new point is (numerically) linearly dependent on existing ones;
        # clamp to a small positive value so the factor stays usable.
        diag2 = max(float(corner) * 1e-12, 1e-12)
    out = np.zeros((n + 1, n + 1))
    out[:n, :n] = lower
    out[n, :n] = row
    out[n, n] = np.sqrt(diag2)
    return out


def cholesky_append(
    lower: np.ndarray, cross: np.ndarray, corner: np.ndarray
) -> np.ndarray:
    """Extend a Cholesky factor by ``k`` rows/columns (rank-k border update).

    Given ``L`` with ``L L^T = K``, the covariance block ``cross`` (n, k) of
    the new points against the existing ones, and their self-covariance block
    ``corner`` (k, k), return the factor of the bordered matrix
    ``[[K, cross], [cross^T, corner]]`` in O(n^2 k) instead of O((n+k)^3).

    Unlike :func:`cholesky_update` this does *not* clamp degenerate blocks:
    when the Schur complement ``corner - B^T B`` has lost positive
    definiteness it raises :class:`numpy.linalg.LinAlgError`, so callers can
    fall back to a full refactorization — an inexact clamp here would break
    the exactness contract of the incremental surrogate path.
    """
    lower = np.asarray(lower, dtype=float)
    cross = np.asarray(cross, dtype=float)
    corner = np.asarray(corner, dtype=float)
    if cross.ndim == 1:
        cross = cross.reshape(-1, 1)
    n = lower.shape[0]
    k = cross.shape[1]
    if cross.shape[0] != n:
        raise ValueError(f"cross must have {n} rows, got {cross.shape[0]}")
    if corner.shape != (k, k):
        raise ValueError(f"corner must have shape ({k}, {k}), got {corner.shape}")
    if not (np.all(np.isfinite(cross)) and np.all(np.isfinite(corner))):
        raise np.linalg.LinAlgError("append block contains non-finite entries")
    B = solve_lower(lower, cross) if n else np.zeros((0, k))
    schur = corner - B.T @ B
    schur = 0.5 * (schur + schur.T)
    lower_k = np.linalg.cholesky(schur)  # raises LinAlgError on PD loss
    out = np.zeros((n + k, n + k))
    out[:n, :n] = lower
    out[n:, :n] = B.T
    out[n:, n:] = lower_k
    return out


def cholesky_shrink(lower: np.ndarray, k: int) -> np.ndarray:
    """Factor with the *last* ``k`` rows/columns removed.

    Because the leading principal block of a lower-triangular factor is the
    factor of the leading principal block of the matrix, discarding trailing
    points is exact truncation — this is how hallucinated pending points are
    dropped without refactorizing.
    """
    lower = np.asarray(lower, dtype=float)
    n = lower.shape[0]
    if not 0 <= k <= n:
        raise ValueError(f"cannot remove {k} rows from a {n}x{n} factor")
    return lower[: n - k, : n - k].copy()


def cholesky_rank1_update(lower: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Factor of ``L L^T + v v^T`` via Givens-style rotations in O(n^2)."""
    L = np.array(lower, dtype=float)
    x = np.asarray(v, dtype=float).ravel().copy()
    n = L.shape[0]
    if x.shape[0] != n:
        raise ValueError(f"v must have length {n}, got {x.shape[0]}")
    for i in range(n):
        r = np.hypot(L[i, i], x[i])
        c = r / L[i, i]
        s = x[i] / L[i, i]
        L[i, i] = r
        if i + 1 < n:
            L[i + 1 :, i] = (L[i + 1 :, i] + s * x[i + 1 :]) / c
            x[i + 1 :] = c * x[i + 1 :] - s * L[i + 1 :, i]
    return L


def cholesky_rank1_downdate(lower: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Factor of ``L L^T - v v^T``; raises on loss of positive definiteness.

    The downdate is the numerically delicate direction: when ``v v^T``
    carries (numerically) as much mass as the factor itself the hyperbolic
    rotation has no real solution.  That condition is surfaced as
    :class:`numpy.linalg.LinAlgError` so callers can refactorize instead of
    silently producing a corrupted factor.
    """
    L = np.array(lower, dtype=float)
    x = np.asarray(v, dtype=float).ravel().copy()
    n = L.shape[0]
    if x.shape[0] != n:
        raise ValueError(f"v must have length {n}, got {x.shape[0]}")
    for i in range(n):
        d = (L[i, i] - x[i]) * (L[i, i] + x[i])
        if d <= 0.0:
            raise np.linalg.LinAlgError(
                f"rank-1 downdate lost positive definiteness at row {i}"
            )
        r = np.sqrt(d)
        c = r / L[i, i]
        s = x[i] / L[i, i]
        L[i, i] = r
        if i + 1 < n:
            L[i + 1 :, i] = (L[i + 1 :, i] - s * x[i + 1 :]) / c
            x[i + 1 :] = c * x[i + 1 :] - s * L[i + 1 :, i]
    return L


def cholesky_delete_row(lower: np.ndarray, index: int) -> np.ndarray:
    """Factor with row/column ``index`` of the underlying matrix removed.

    The leading block is untouched, the trailing block absorbs the deleted
    column by a (always PD-safe) rank-1 update: with ``L33`` the trailing
    factor block and ``l32`` the deleted column below the diagonal,
    ``L33' L33'^T = L33 L33^T + l32 l32^T``.
    """
    lower = np.asarray(lower, dtype=float)
    n = lower.shape[0]
    if not 0 <= index < n:
        raise ValueError(f"index {index} out of range for a {n}x{n} factor")
    out = np.zeros((n - 1, n - 1))
    out[:index, :index] = lower[:index, :index]
    out[index:, :index] = lower[index + 1 :, :index]
    trailing = lower[index + 1 :, index + 1 :]
    if trailing.shape[0]:
        out[index:, index:] = cholesky_rank1_update(
            trailing, lower[index + 1 :, index]
        )
    return out
