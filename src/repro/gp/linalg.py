"""Numerically robust linear algebra for Gaussian-process regression.

Everything in :mod:`repro.gp` funnels its matrix work through these helpers so
that the jitter policy (how much diagonal noise to add when a kernel matrix is
numerically singular) lives in exactly one place.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

__all__ = [
    "jittered_cholesky",
    "cholesky_solve",
    "cholesky_update",
    "solve_lower",
    "log_det_from_cholesky",
]

#: First jitter magnitude tried when a Cholesky factorization fails.
INITIAL_JITTER = 1e-10

#: Jitter is escalated by this factor on each failed attempt.
JITTER_GROWTH = 10.0

#: Number of escalation attempts before giving up.
MAX_ATTEMPTS = 10


def jittered_cholesky(matrix: np.ndarray) -> tuple[np.ndarray, float]:
    """Lower Cholesky factor of ``matrix``, adding diagonal jitter if needed.

    Returns ``(L, jitter)`` where ``L @ L.T == matrix + jitter * I`` and
    ``jitter`` is the smallest value from an escalating schedule that made the
    factorization succeed (``0.0`` when none was needed).

    Raises
    ------
    numpy.linalg.LinAlgError
        If the matrix is not positive definite even after the maximum jitter.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"matrix must be square, got shape {matrix.shape}")
    if not np.all(np.isfinite(matrix)):
        raise np.linalg.LinAlgError("matrix contains non-finite entries")

    jitter = 0.0
    scale = float(np.mean(np.diag(matrix))) if matrix.shape[0] else 1.0
    scale = max(scale, 1.0)
    for attempt in range(MAX_ATTEMPTS + 1):
        try:
            lower = np.linalg.cholesky(
                matrix if jitter == 0.0 else matrix + jitter * np.eye(matrix.shape[0])
            )
            return lower, jitter
        except np.linalg.LinAlgError:
            jitter = scale * INITIAL_JITTER * (JITTER_GROWTH**attempt)
    raise np.linalg.LinAlgError(
        f"matrix not positive definite even with jitter {jitter:.3e}"
    )


def solve_lower(lower: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``L x = rhs`` for lower-triangular ``L``."""
    return sla.solve_triangular(lower, rhs, lower=True)


def cholesky_solve(lower: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``(L L^T) x = rhs`` given the lower Cholesky factor ``L``."""
    return sla.cho_solve((lower, True), rhs)


def log_det_from_cholesky(lower: np.ndarray) -> float:
    """``log det(L L^T)`` computed stably from the factor's diagonal."""
    return 2.0 * float(np.sum(np.log(np.diag(lower))))


def cholesky_update(
    lower: np.ndarray, cross: np.ndarray, corner: float
) -> np.ndarray:
    """Extend a Cholesky factor by one row/column.

    Given ``L`` with ``L L^T = K`` and a new point whose covariance against the
    existing points is ``cross`` (length n) with self-covariance ``corner``,
    return the factor of the bordered matrix ``[[K, cross], [cross^T, corner]]``.

    This is the O(n^2) incremental update used when hallucinating busy points
    one at a time during batch selection.
    """
    lower = np.asarray(lower, dtype=float)
    cross = np.asarray(cross, dtype=float).ravel()
    n = lower.shape[0]
    if cross.shape[0] != n:
        raise ValueError(f"cross must have length {n}, got {cross.shape[0]}")
    row = solve_lower(lower, cross) if n else np.empty(0)
    diag2 = float(corner) - float(row @ row)
    if diag2 <= 0.0:
        # The new point is (numerically) linearly dependent on existing ones;
        # clamp to a small positive value so the factor stays usable.
        diag2 = max(float(corner) * 1e-12, 1e-12)
    out = np.zeros((n + 1, n + 1))
    out[:n, :n] = lower
    out[n, :n] = row
    out[n, n] = np.sqrt(diag2)
    return out
