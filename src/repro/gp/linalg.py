"""Numerically robust linear algebra for Gaussian-process regression.

Everything in :mod:`repro.gp` funnels its matrix work through these helpers so
that the jitter policy (how much diagonal noise to add when a kernel matrix is
numerically singular) lives in exactly one place.
"""

from __future__ import annotations

import math

import numpy as np
import scipy.linalg as sla
from scipy.linalg import blas

__all__ = [
    "jittered_cholesky",
    "cholesky_solve",
    "cholesky_update",
    "cholesky_append",
    "cholesky_shrink",
    "cholesky_rank1_update",
    "cholesky_rank1_downdate",
    "cholesky_delete_row",
    "solve_lower",
    "log_det_from_cholesky",
    "Workspace",
    "CHOLESKY_BLOCK",
]

#: First jitter magnitude tried when a Cholesky factorization fails.
INITIAL_JITTER = 1e-10

#: Jitter is escalated by this factor on each failed attempt.
JITTER_GROWTH = 10.0

#: Number of escalation attempts before giving up.
MAX_ATTEMPTS = 10

#: Panel width for the blocked rank-1 factor updates.  Within a panel the
#: rotation loop touches only panel-local rows (hot in L1); the trailing rows
#: are then swept once per panel instead of once per column, which keeps the
#: working set of the O(n^2) update cache-resident for large factors.
CHOLESKY_BLOCK = 64


class Workspace:
    """Reusable keyed buffer pool for allocation-free hot loops.

    The incremental surrogate path calls the same shaped kernel/solve
    operations thousands of times per campaign; allocating fresh temporaries
    on every event shows up directly in the per-ask latency once ``n`` grows
    past a few thousand.  A :class:`Workspace` hands out views into
    capacity-doubled backing buffers, so a steady-state loop performs zero
    heap allocations.

    Buffers are keyed by name; requesting a key with a larger size grows the
    backing store (never shrinks).  The returned views are uninitialised —
    callers must overwrite them fully.
    """

    def __init__(self):
        self._buffers: dict[str, np.ndarray] = {}

    def array(self, key: str, shape, dtype=float, order: str = "C") -> np.ndarray:
        """An uninitialised array view of ``shape`` backed by pool ``key``.

        ``order="F"`` hands out a Fortran-layout view — pair it with
        :func:`solve_lower(..., overwrite_rhs=True)` so LAPACK solves truly
        in place instead of silently copying a C-ordered right-hand side.
        """
        shape = tuple(int(s) for s in (shape if np.iterable(shape) else (shape,)))
        size = 1
        for s in shape:
            size *= s
        buf = self._buffers.get(key)
        if buf is None or buf.size < size or buf.dtype != np.dtype(dtype):
            capacity = size if buf is None else max(size, 2 * buf.size)
            buf = np.empty(capacity, dtype=dtype)
            self._buffers[key] = buf
        return buf[:size].reshape(shape, order=order)

    def clear(self) -> None:
        self._buffers.clear()

    @property
    def nbytes(self) -> int:
        return sum(buf.nbytes for buf in self._buffers.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Workspace(keys={sorted(self._buffers)}, nbytes={self.nbytes})"


def jittered_cholesky(matrix: np.ndarray) -> tuple[np.ndarray, float]:
    """Lower Cholesky factor of ``matrix``, adding diagonal jitter if needed.

    Returns ``(L, jitter)`` where ``L @ L.T == matrix + jitter * I`` and
    ``jitter`` is the smallest value from an escalating schedule that made the
    factorization succeed (``0.0`` when none was needed).

    Raises
    ------
    numpy.linalg.LinAlgError
        If the matrix is not positive definite even after the maximum jitter.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"matrix must be square, got shape {matrix.shape}")
    if not np.all(np.isfinite(matrix)):
        raise np.linalg.LinAlgError("matrix contains non-finite entries")

    jitter = 0.0
    scale = float(np.mean(np.diag(matrix))) if matrix.shape[0] else 1.0
    scale = max(scale, 1.0)
    for attempt in range(MAX_ATTEMPTS + 1):
        try:
            lower = np.linalg.cholesky(
                matrix if jitter == 0.0 else matrix + jitter * np.eye(matrix.shape[0])
            )
            return lower, jitter
        except np.linalg.LinAlgError:
            jitter = scale * INITIAL_JITTER * (JITTER_GROWTH**attempt)
    raise np.linalg.LinAlgError(
        f"matrix not positive definite even with jitter {jitter:.3e}"
    )


def solve_lower(
    lower: np.ndarray, rhs: np.ndarray, *, overwrite_rhs: bool = False
) -> np.ndarray:
    """Solve ``L x = rhs`` for lower-triangular ``L``.

    ``check_finite=False``: every factor passed here was produced by this
    module (which rejects non-finite input up front), so scipy's O(n^2)
    finiteness scan per call would only re-check known-good data on the
    incremental hot path.

    ``overwrite_rhs=True`` lets LAPACK solve in place when ``rhs`` is a
    scratch buffer the caller owns (e.g. from a :class:`Workspace`) —
    the allocation-free variant used by the sparse posterior hot loop.
    """
    return sla.solve_triangular(
        lower, rhs, lower=True, check_finite=False, overwrite_b=overwrite_rhs
    )


def cholesky_solve(lower: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``(L L^T) x = rhs`` given the lower Cholesky factor ``L``.

    ``check_finite=False`` for the same reason as :func:`solve_lower`.
    """
    return sla.cho_solve((lower, True), rhs, check_finite=False)


def log_det_from_cholesky(lower: np.ndarray) -> float:
    """``log det(L L^T)`` computed stably from the factor's diagonal."""
    return 2.0 * float(np.sum(np.log(np.diag(lower))))


def cholesky_update(
    lower: np.ndarray, cross: np.ndarray, corner: float
) -> np.ndarray:
    """Extend a Cholesky factor by one row/column.

    Given ``L`` with ``L L^T = K`` and a new point whose covariance against the
    existing points is ``cross`` (length n) with self-covariance ``corner``,
    return the factor of the bordered matrix ``[[K, cross], [cross^T, corner]]``.

    This is the O(n^2) incremental update used when hallucinating busy points
    one at a time during batch selection.
    """
    lower = np.asarray(lower, dtype=float)
    cross = np.asarray(cross, dtype=float).ravel()
    n = lower.shape[0]
    if cross.shape[0] != n:
        raise ValueError(f"cross must have length {n}, got {cross.shape[0]}")
    row = solve_lower(lower, cross) if n else np.empty(0)
    diag2 = float(corner) - float(row @ row)
    if diag2 <= 0.0:
        # The new point is (numerically) linearly dependent on existing ones;
        # clamp to a small positive value so the factor stays usable.
        diag2 = max(float(corner) * 1e-12, 1e-12)
    out = np.zeros((n + 1, n + 1))
    out[:n, :n] = lower
    out[n, :n] = row
    out[n, n] = np.sqrt(diag2)
    return out


def cholesky_append(
    lower: np.ndarray, cross: np.ndarray, corner: np.ndarray
) -> np.ndarray:
    """Extend a Cholesky factor by ``k`` rows/columns (rank-k border update).

    Given ``L`` with ``L L^T = K``, the covariance block ``cross`` (n, k) of
    the new points against the existing ones, and their self-covariance block
    ``corner`` (k, k), return the factor of the bordered matrix
    ``[[K, cross], [cross^T, corner]]`` in O(n^2 k) instead of O((n+k)^3).

    Unlike :func:`cholesky_update` this does *not* clamp degenerate blocks:
    when the Schur complement ``corner - B^T B`` has lost positive
    definiteness it raises :class:`numpy.linalg.LinAlgError`, so callers can
    fall back to a full refactorization — an inexact clamp here would break
    the exactness contract of the incremental surrogate path.
    """
    lower = np.asarray(lower, dtype=float)
    cross = np.asarray(cross, dtype=float)
    corner = np.asarray(corner, dtype=float)
    if cross.ndim == 1:
        cross = cross.reshape(-1, 1)
    n = lower.shape[0]
    k = cross.shape[1]
    if cross.shape[0] != n:
        raise ValueError(f"cross must have {n} rows, got {cross.shape[0]}")
    if corner.shape != (k, k):
        raise ValueError(f"corner must have shape ({k}, {k}), got {corner.shape}")
    if not (np.all(np.isfinite(cross)) and np.all(np.isfinite(corner))):
        raise np.linalg.LinAlgError("append block contains non-finite entries")
    B = solve_lower(lower, cross) if n else np.zeros((0, k))
    schur = corner - B.T @ B
    schur = 0.5 * (schur + schur.T)
    lower_k = np.linalg.cholesky(schur)  # raises LinAlgError on PD loss
    out = np.zeros((n + k, n + k))
    out[:n, :n] = lower
    out[n:, :n] = B.T
    out[n:, n:] = lower_k
    return out


def cholesky_shrink(lower: np.ndarray, k: int) -> np.ndarray:
    """Factor with the *last* ``k`` rows/columns removed.

    Because the leading principal block of a lower-triangular factor is the
    factor of the leading principal block of the matrix, discarding trailing
    points is exact truncation — this is how hallucinated pending points are
    dropped without refactorizing.
    """
    lower = np.asarray(lower, dtype=float)
    n = lower.shape[0]
    if not 0 <= k <= n:
        raise ValueError(f"cannot remove {k} rows from a {n}x{n} factor")
    return lower[: n - k, : n - k].copy()


def _rank1_sweep(L: np.ndarray, x: np.ndarray, sign: float) -> np.ndarray:
    """Shared blocked kernel for the rank-1 update (+v v^T) and downdate.

    The classic column-at-a-time Givens sweep touches the *entire* trailing
    submatrix once per column — O(n) short numpy calls whose operands fall
    out of cache between iterations.  Here columns are processed in panels of
    :data:`CHOLESKY_BLOCK`: rotations are computed against panel-local rows
    only, then applied to the trailing rows in one pass per panel while
    ``x[p1:]`` stays cache-resident.

    Per element the chain of floating-point operations (and their order) is
    identical to the unblocked sweep — row ``j``'s transformation at column
    ``i`` depends only on values produced by columns ``< i`` for that same
    row — so the result is bit-for-bit the same; only the schedule changes.

    Mutates and returns ``L``; ``x`` is consumed as scratch.  On a PD-loss
    raise the factor is partially mutated — callers own the copy.
    """
    n = L.shape[0]
    c_buf = np.empty(CHOLESKY_BLOCK)
    s_buf = np.empty(CHOLESKY_BLOCK)
    scratch = np.empty(n)
    for p0 in range(0, n, CHOLESKY_BLOCK):
        p1 = min(p0 + CHOLESKY_BLOCK, n)
        for i in range(p0, p1):
            if sign > 0.0:
                r = np.hypot(L[i, i], x[i])
            else:
                d = (L[i, i] - x[i]) * (L[i, i] + x[i])
                if d <= 0.0:
                    raise np.linalg.LinAlgError(
                        f"rank-1 downdate lost positive definiteness at row {i}"
                    )
                r = np.sqrt(d)
            c = r / L[i, i]
            s = x[i] / L[i, i]
            L[i, i] = r
            c_buf[i - p0] = c
            s_buf[i - p0] = s
            if i + 1 < p1:
                L[i + 1 : p1, i] = (L[i + 1 : p1, i] + sign * s * x[i + 1 : p1]) / c
                x[i + 1 : p1] = c * x[i + 1 : p1] - s * L[i + 1 : p1, i]
        if p1 < n:
            x_tail = x[p1:]
            tmp = scratch[: n - p1]
            for i in range(p0, p1):
                col = L[p1:, i]
                c = c_buf[i - p0]
                s = s_buf[i - p0]
                np.multiply(x_tail, sign * s, out=tmp)
                col += tmp
                col /= c
                x_tail *= c
                np.multiply(col, s, out=tmp)
                x_tail -= tmp
    return L


def _rank1_update_drot(L: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Givens sweep for the rank-1 *update* on BLAS ``drot``.

    Column ``i``'s rotation ``(c, s) = (L_ii, x_i) / r`` zeroes ``x_i``
    against the diagonal; applying it to the trailing column and ``x`` is a
    single strided BLAS call instead of a handful of short numpy
    expressions, which is what dominates at the sparse posterior's factor
    sizes (m ~ a few hundred: the loop is pure Python overhead, the data is
    a fraction of L2).  Uses the textbook rotation ``c*col + s*x`` rather
    than the sweep's scaled form — algebraically identical, different
    round-off, which the ≤1e-8 equivalence harnesses absorb.

    ``L`` must be C-contiguous float64 (callers check); mutated in place.
    """
    n = L.shape[0]
    flat = L.reshape(-1)  # C-contiguous view over the factor's own memory
    hypot = math.hypot
    for i in range(n):
        lii = flat[i * n + i]
        xi = x[i]
        r = hypot(lii, xi)
        c = lii / r
        s = xi / r
        flat[i * n + i] = r
        m = n - i - 1
        if m:
            blas.drot(
                flat, x, c, s, n=m,
                offx=(i + 1) * n + i, incx=n, offy=i + 1, incy=1,
                overwrite_x=True, overwrite_y=True,
            )
    return L


def cholesky_rank1_update(
    lower: np.ndarray, v: np.ndarray, *, overwrite: bool = False
) -> np.ndarray:
    """Factor of ``L L^T + v v^T`` via Givens rotations in O(n^2).

    The hot path (C-contiguous float64 factor, the only layout the GP code
    produces) runs one BLAS ``drot`` per column; other layouts fall back to
    the blocked numpy sweep.  ``overwrite=True`` updates ``lower`` in place
    (it must be a float array the caller owns); otherwise a copy is
    returned and the input untouched.
    """
    L = np.asarray(lower, dtype=float) if overwrite else np.array(lower, dtype=float)
    x = np.asarray(v, dtype=float).ravel().copy()
    n = L.shape[0]
    if x.shape[0] != n:
        raise ValueError(f"v must have length {n}, got {x.shape[0]}")
    if L.flags.c_contiguous and L.dtype == np.float64 and x.flags.c_contiguous:
        return _rank1_update_drot(L, x)
    return _rank1_sweep(L, x, 1.0)


def cholesky_rank1_downdate(
    lower: np.ndarray, v: np.ndarray, *, overwrite: bool = False
) -> np.ndarray:
    """Factor of ``L L^T - v v^T``; raises on loss of positive definiteness.

    The downdate is the numerically delicate direction: when ``v v^T``
    carries (numerically) as much mass as the factor itself the hyperbolic
    rotation has no real solution.  That condition is surfaced as
    :class:`numpy.linalg.LinAlgError` so callers can refactorize instead of
    silently producing a corrupted factor.  With ``overwrite=True`` the
    factor is updated in place and is left partially mutated on a raise —
    in-place callers must treat their factor as invalid after a PD-loss.
    """
    L = np.asarray(lower, dtype=float) if overwrite else np.array(lower, dtype=float)
    x = np.asarray(v, dtype=float).ravel().copy()
    n = L.shape[0]
    if x.shape[0] != n:
        raise ValueError(f"v must have length {n}, got {x.shape[0]}")
    return _rank1_sweep(L, x, -1.0)


def cholesky_delete_row(lower: np.ndarray, index: int) -> np.ndarray:
    """Factor with row/column ``index`` of the underlying matrix removed.

    The leading block is untouched, the trailing block absorbs the deleted
    column by a (always PD-safe) rank-1 update: with ``L33`` the trailing
    factor block and ``l32`` the deleted column below the diagonal,
    ``L33' L33'^T = L33 L33^T + l32 l32^T``.
    """
    lower = np.asarray(lower, dtype=float)
    n = lower.shape[0]
    if not 0 <= index < n:
        raise ValueError(f"index {index} out of range for a {n}x{n} factor")
    out = np.zeros((n - 1, n - 1))
    out[:index, :index] = lower[:index, :index]
    out[index:, :index] = lower[index + 1 :, :index]
    trailing = lower[index + 1 :, index + 1 :]
    if trailing.shape[0]:
        out[index:, index:] = cholesky_rank1_update(
            trailing, lower[index + 1 :, index]
        )
    return out
