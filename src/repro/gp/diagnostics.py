"""Surrogate-quality diagnostics.

Leave-one-out (LOO) cross-validation in closed form [Rasmussen & Williams,
§5.4.2]: with ``K^{-1}`` available, the LOO predictive mean and variance at
training point i are

    mu_i    = y_i - [K^{-1} y]_i / [K^{-1}]_ii
    sigma_i^2 = 1 / [K^{-1}]_ii

These power the model checks used when debugging a stalled optimization: a
healthy surrogate has LOO standardized residuals ~ N(0, 1); residuals with
huge magnitude mean the kernel (or its lengthscale floor) cannot explain the
landscape.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.gp import linalg
from repro.gp.gp import GaussianProcess

__all__ = ["LooResult", "leave_one_out"]


@dataclasses.dataclass
class LooResult:
    """Closed-form leave-one-out predictions on the training set."""

    mean: np.ndarray
    std: np.ndarray
    residuals: np.ndarray  # y - mu, per point

    @property
    def standardized_residuals(self) -> np.ndarray:
        """``(y_i - mu_i) / sigma_i`` — should look standard normal."""
        return self.residuals / self.std

    @property
    def rmse(self) -> float:
        return float(np.sqrt(np.mean(self.residuals**2)))

    def log_predictive_density(self) -> float:
        """Sum of LOO log densities — the CV analogue of the LML."""
        z2 = self.standardized_residuals**2
        return float(
            -0.5 * np.sum(z2 + np.log(2.0 * np.pi * self.std**2))
        )


def leave_one_out(model: GaussianProcess) -> LooResult:
    """Compute closed-form LOO predictions for a fitted GP."""
    if not model.is_fitted:
        raise RuntimeError("fit the GP before running diagnostics")
    n = model.n_train
    K = model.kernel(model.X) + model.noise_variance * np.eye(n)
    lower, _ = linalg.jittered_cholesky(K)
    K_inv = linalg.cholesky_solve(lower, np.eye(n))
    alpha = linalg.cholesky_solve(lower, model.y - model.mean(model.X))
    diag = np.diag(K_inv)
    residuals = alpha / diag
    mean = model.y - residuals
    std = np.sqrt(1.0 / diag)
    return LooResult(mean=mean, std=std, residuals=residuals)
