"""Input and output standardization for GP training.

Circuit design variables span wildly different scales (transistor widths in
micrometres, capacitances in picofarads); fitting the GP in a normalized space
makes the ARD lengthscale optimization well conditioned.  The BO drivers work
in the unit cube internally and only map back to physical units at the
simulator boundary, but these transforms are also exposed for direct GP use.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_bounds, check_matrix, check_vector

__all__ = ["BoxTransform", "OutputStandardizer"]


class BoxTransform:
    """Affine map between a physical box ``[lo, hi]^d`` and the unit cube."""

    def __init__(self, bounds):
        self.bounds = check_bounds(bounds)
        self.lo = self.bounds[:, 0]
        self.span = self.bounds[:, 1] - self.bounds[:, 0]

    @property
    def dim(self) -> int:
        return self.bounds.shape[0]

    def to_unit(self, X) -> np.ndarray:
        """Map physical coordinates into ``[0, 1]^d``."""
        X = check_matrix(X, "X", cols=self.dim)
        return (X - self.lo) / self.span

    def to_physical(self, U) -> np.ndarray:
        """Map unit-cube coordinates back to physical units."""
        U = check_matrix(U, "U", cols=self.dim)
        return self.lo + U * self.span

    def clip_unit(self, U) -> np.ndarray:
        """Clamp unit-cube coordinates into ``[0, 1]^d``."""
        U = check_matrix(U, "U", cols=self.dim)
        return np.clip(U, 0.0, 1.0)


class OutputStandardizer:
    """Remove mean and scale of the observations before GP fitting.

    The inverse transform restores predictive means and standard deviations to
    the original units.  Degenerate datasets (constant y) fall back to unit
    scale so the transform stays invertible.
    """

    def __init__(self):
        self.mean_ = 0.0
        self.scale_ = 1.0

    def fit(self, y) -> "OutputStandardizer":
        y = check_vector(y, "y")
        if y.size == 0:
            raise ValueError("cannot standardize an empty observation vector")
        self.mean_ = float(np.mean(y))
        scale = float(np.std(y))
        self.scale_ = scale if scale > 1e-12 else 1.0
        return self

    def transform(self, y) -> np.ndarray:
        y = check_vector(y, "y")
        return (y - self.mean_) / self.scale_

    def fit_transform(self, y) -> np.ndarray:
        return self.fit(y).transform(y)

    def inverse_mean(self, mu) -> np.ndarray:
        """Map standardized predictive means back to original units."""
        return np.asarray(mu, dtype=float) * self.scale_ + self.mean_

    def inverse_std(self, sigma) -> np.ndarray:
        """Map standardized predictive standard deviations back."""
        return np.asarray(sigma, dtype=float) * self.scale_
