"""Gaussian-process regression (Eq. 2 of the paper).

Implements exact GP regression with a stationary ARD kernel, Gaussian
observation noise, and the posterior

    mu(x*)     = k(x*, X) K^{-1} y
    sigma^2(x*) = k(x*, x*) - k(x*, X) K^{-1} k(X, x*)

where ``K = k(X, X) + sigma_n^2 I``.  Two features matter for EasyBO:

* :meth:`GaussianProcess.log_marginal_likelihood` exposes the analytic
  gradient used by ML-II hyperparameter fitting (:mod:`repro.gp.hyperopt`);
* :meth:`GaussianProcess.condition_on_pending` implements the paper's
  penalization scheme (§III-C): pending batch points are appended to the
  training set with their own predictive means as hallucinated observations,
  which collapses the posterior variance around busy locations without
  changing the predictive mean surface.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.gp import linalg
from repro.gp.kernels import Kernel, SquaredExponential
from repro.gp.mean import MeanFunction, ZeroMean
from repro.utils.validation import check_finite, check_matrix, check_vector

__all__ = ["GaussianProcess", "PosteriorState", "ExactCholeskyState"]

#: Floor applied to the predictive variance before taking square roots.
VARIANCE_FLOOR = 1e-14

#: Floor on the noise variance; keeps K invertible for duplicated inputs.
NOISE_FLOOR = 1e-10


class PosteriorState:
    """Base for swappable posterior representations behind a surrogate.

    The seam (after syne-tune's ``posterior_state.py``) that lets the
    surrogate session switch between the exact O(n^3) Cholesky posterior and
    the budgeted inducing-point posterior (:mod:`repro.gp.sparse`) without
    the BO layers noticing: each state is a value object owning exactly the
    arrays its predictive equations need.
    """

    def copy(self) -> "PosteriorState":
        raise NotImplementedError


@dataclasses.dataclass
class ExactCholeskyState(PosteriorState):
    """Exact-GP posterior: lower Cholesky factor of ``K`` and ``K^{-1} r``."""

    lower: np.ndarray | None = None
    alpha: np.ndarray | None = None

    def copy(self) -> "ExactCholeskyState":
        return ExactCholeskyState(
            lower=None if self.lower is None else self.lower.copy(),
            alpha=None if self.alpha is None else self.alpha.copy(),
        )


class GaussianProcess:
    """Exact GP regression model.

    Parameters
    ----------
    kernel:
        Covariance function; defaults to :class:`SquaredExponential` over
        ``dim`` dimensions (the paper's choice).
    noise_variance:
        Gaussian observation-noise variance ``sigma_n^2``.
    mean:
        Prior mean function; defaults to zero (use with standardized y).
    """

    def __init__(
        self,
        dim: int | None = None,
        *,
        kernel: Kernel | None = None,
        noise_variance: float = 1e-6,
        mean: MeanFunction | None = None,
    ):
        if kernel is None:
            if dim is None:
                raise ValueError("provide either dim or kernel")
            kernel = SquaredExponential(dim)
        elif dim is not None and kernel.dim != dim:
            raise ValueError(f"kernel.dim={kernel.dim} does not match dim={dim}")
        if noise_variance < 0:
            raise ValueError(f"noise_variance must be >= 0, got {noise_variance}")
        self.kernel = kernel
        self.noise_variance = max(float(noise_variance), NOISE_FLOOR)
        self.mean = mean if mean is not None else ZeroMean()
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._state = ExactCholeskyState()

    # ------------------------------------------------------------ properties
    @property
    def posterior_state(self) -> ExactCholeskyState:
        """The posterior value object behind this model (see PosteriorState)."""
        return self._state

    # The factorization methods below were written against ``_lower`` /
    # ``_alpha`` attributes; routing them through the state keeps every
    # method body (and hence every floating-point operation) unchanged.
    @property
    def _lower(self) -> np.ndarray | None:
        return self._state.lower

    @_lower.setter
    def _lower(self, value: np.ndarray | None) -> None:
        self._state.lower = value

    @property
    def _alpha(self) -> np.ndarray | None:
        return self._state.alpha

    @_alpha.setter
    def _alpha(self, value: np.ndarray | None) -> None:
        self._state.alpha = value

    @property
    def dim(self) -> int:
        return self.kernel.dim

    @property
    def is_fitted(self) -> bool:
        return self._X is not None

    @property
    def X(self) -> np.ndarray:
        self._require_fitted()
        return self._X

    @property
    def y(self) -> np.ndarray:
        self._require_fitted()
        return self._y

    @property
    def n_train(self) -> int:
        return 0 if self._X is None else self._X.shape[0]

    @property
    def cholesky_factor(self) -> np.ndarray:
        """Cached lower Cholesky factor of the training covariance.

        Exposed (read-only by convention) so incremental consumers such as
        :class:`~repro.core.surrogate.HallucinatedView` can extend the
        factored system without refactorizing; do not mutate it.
        """
        self._require_fitted()
        return self._lower

    @property
    def alpha(self) -> np.ndarray:
        """Cached ``K^{-1} (y - m(X))`` weights (read-only by convention)."""
        self._require_fitted()
        return self._alpha

    # ------------------------------------------------------------------ fit
    def fit(self, X, y) -> "GaussianProcess":
        """Factorize the training covariance and cache ``alpha = K^{-1} r``.

        ``r`` is the residual ``y - m(X)``.  Raises on non-finite input — a
        failed circuit simulation must be mapped to a finite penalty *before*
        it reaches the surrogate.
        """
        X = check_matrix(X, "X", cols=self.dim)
        y = check_vector(y, "y", size=X.shape[0])
        if X.shape[0] == 0:
            raise ValueError("cannot fit a GP on an empty dataset")
        check_finite(X, "X")
        check_finite(y, "y")
        self._X = X.copy()
        self._y = y.copy()
        self._refactorize()
        return self

    def _refactorize(self) -> None:
        K = self.kernel(self._X) + self.noise_variance * np.eye(self.n_train)
        self._lower, _ = linalg.jittered_cholesky(K)
        residual = self._y - self.mean(self._X)
        self._alpha = linalg.cholesky_solve(self._lower, residual)

    def update(self, X_new, y_new, *, refresh_alpha: bool = True) -> "GaussianProcess":
        """Append a block of observations reusing the cached factor.

        This is the O(n^2 k) incremental path: valid only while the
        hyperparameters are unchanged since the last factorization (the
        factor being extended was computed at the current ``theta``).  The
        model is left exactly as if :meth:`fit` had been called on the
        concatenated dataset, up to floating-point round-off.

        ``refresh_alpha=False`` skips the weight-vector solve, leaving the
        model *inconsistent* until a following :meth:`set_targets` call —
        only for callers that immediately replace every target anyway (the
        session's re-standardization path), where solving twice would
        double the per-event cost.

        Raises
        ------
        numpy.linalg.LinAlgError
            When the appended block loses positive definiteness; the model
            is left untouched so callers can fall back to a full refit.
        """
        self._require_fitted()
        X_new = check_matrix(X_new, "X_new", cols=self.dim)
        y_new = check_vector(y_new, "y_new", size=X_new.shape[0])
        if X_new.shape[0] == 0:
            return self
        check_finite(X_new, "X_new")
        check_finite(y_new, "y_new")
        cross = self.kernel(self._X, X_new)
        corner = self.kernel(X_new) + self.noise_variance * np.eye(X_new.shape[0])
        # May raise LinAlgError; assign only afterwards so a PD-loss leaves
        # the model in its previous, consistent state.
        lower = linalg.cholesky_append(self._lower, cross, corner)
        self._lower = lower
        self._X = np.vstack([self._X, X_new])
        self._y = np.concatenate([self._y, y_new])
        if refresh_alpha:
            self._alpha = linalg.cholesky_solve(
                self._lower, self._y - self.mean(self._X)
            )
        return self

    def downdate(self, k: int = 1) -> "GaussianProcess":
        """Discard the last ``k`` observations without refactorizing.

        Truncating a Cholesky factor is exact (the leading block of the
        factor *is* the factor of the leading block), so this never loses
        positive definiteness — it is how hallucinated pending points are
        discarded.
        """
        self._require_fitted()
        k = int(k)
        if not 0 <= k < self.n_train:
            raise ValueError(
                f"cannot discard {k} of {self.n_train} observations "
                "(at least one must remain)"
            )
        if k == 0:
            return self
        self._lower = linalg.cholesky_shrink(self._lower, k)
        self._X = self._X[:-k]
        self._y = self._y[:-k]
        self._alpha = linalg.cholesky_solve(self._lower, self._y - self.mean(self._X))
        return self

    def set_targets(self, y) -> "GaussianProcess":
        """Replace the observation values (same inputs), reusing the factor.

        The covariance factor depends only on ``X`` and the hyperparameters,
        so re-standardized targets need just an O(n^2) triangular solve.
        """
        self._require_fitted()
        y = check_vector(y, "y", size=self.n_train)
        check_finite(y, "y")
        self._y = y.copy()
        self._alpha = linalg.cholesky_solve(self._lower, self._y - self.mean(self._X))
        return self

    def add_observation(self, x, y_value: float) -> "GaussianProcess":
        """Append one observation using an O(n^2) Cholesky border update."""
        self._require_fitted()
        x = check_vector(x, "x", size=self.dim)
        cross = self.kernel(self._X, x.reshape(1, -1)).ravel()
        corner = float(self.kernel.diag(x.reshape(1, -1))[0]) + self.noise_variance
        self._lower = linalg.cholesky_update(self._lower, cross, corner)
        self._X = np.vstack([self._X, x])
        self._y = np.append(self._y, float(y_value))
        residual = self._y - self.mean(self._X)
        self._alpha = linalg.cholesky_solve(self._lower, residual)
        return self

    # -------------------------------------------------------------- predict
    def predict(self, X, return_std: bool = True):
        """Posterior mean (and standard deviation) at the rows of ``X``.

        Returns ``mu`` or ``(mu, sigma)`` with shapes ``(n,)``.
        """
        self._require_fitted()
        X = check_matrix(X, "X", cols=self.dim)
        k_star = self.kernel(self._X, X)  # (n_train, n)
        mu = self.mean(X) + k_star.T @ self._alpha
        if not return_std:
            return mu
        v = linalg.solve_lower(self._lower, k_star)  # (n_train, n)
        var = self.kernel.diag(X) - np.sum(v**2, axis=0)
        sigma = np.sqrt(np.maximum(var, VARIANCE_FLOOR))
        return mu, sigma

    def posterior_covariance(self, X) -> np.ndarray:
        """Full posterior covariance matrix at the rows of ``X``."""
        self._require_fitted()
        X = check_matrix(X, "X", cols=self.dim)
        k_star = self.kernel(self._X, X)
        v = linalg.solve_lower(self._lower, k_star)
        cov = self.kernel(X) - v.T @ v
        # Symmetrize against round-off.
        return 0.5 * (cov + cov.T)

    def sample_posterior(self, X, n_samples: int = 1, rng=None) -> np.ndarray:
        """Draw joint posterior samples; returns shape ``(n_samples, n)``."""
        from repro.utils.rng import as_generator

        rng = as_generator(rng)
        X = check_matrix(X, "X", cols=self.dim)
        mu = self.predict(X, return_std=False)
        cov = self.posterior_covariance(X)
        lower, _ = linalg.jittered_cholesky(cov + VARIANCE_FLOOR * np.eye(len(mu)))
        z = rng.standard_normal((n_samples, len(mu)))
        return mu[None, :] + z @ lower.T

    # ------------------------------------------------- pending-point scheme
    def condition_on_pending(self, X_pending) -> "GaussianProcess":
        """Hallucinate pending batch points into the model (paper §III-C).

        Each pending point is appended to the training set with its *current
        predictive mean* as a pseudo-observation (kriging believer, as in
        BUCB).  The returned model's sigma-hat collapses near the pending
        points, which is exactly the diversity penalty of Eq. 9, while the
        mean surface is unchanged at the pending locations.

        The original model is not modified.
        """
        self._require_fitted()
        X_pending = check_matrix(X_pending, "X_pending", cols=self.dim)
        model = self.copy()
        for x in X_pending:
            y_hat = float(model.predict(x.reshape(1, -1), return_std=False)[0])
            model.add_observation(x, y_hat)
        return model

    # ---------------------------------------------------- marginal likelihood
    def log_marginal_likelihood(
        self, theta: np.ndarray | None = None, return_grad: bool = False
    ):
        """Log marginal likelihood, optionally with its gradient.

        ``theta`` packs the kernel's log-space hyperparameters followed by the
        log noise standard deviation: ``[kernel theta..., log sigma_n]``.
        When ``theta`` is given the model is updated in place (this is the
        objective evaluated inside the hyperparameter optimizer).
        """
        self._require_fitted()
        if theta is not None:
            theta = np.asarray(theta, dtype=float)
            if theta.shape != (self.n_hyperparameters,):
                raise ValueError(
                    f"theta must have shape ({self.n_hyperparameters},), "
                    f"got {theta.shape}"
                )
            self.kernel.set_theta(theta[:-1])
            self.noise_variance = max(float(np.exp(2.0 * theta[-1])), NOISE_FLOOR)
            self._refactorize()

        n = self.n_train
        lml = (
            -0.5 * float((self._y - self.mean(self._X)) @ self._alpha)
            - 0.5 * linalg.log_det_from_cholesky(self._lower)
            - 0.5 * n * np.log(2.0 * np.pi)
        )
        if not return_grad:
            return lml

        # grad_i = 0.5 tr((alpha alpha^T - K^{-1}) dK/dtheta_i)
        K_inv = linalg.cholesky_solve(self._lower, np.eye(n))
        outer = np.outer(self._alpha, self._alpha) - K_inv
        grads = []
        for dK in self.kernel.gradients(self._X):
            grads.append(0.5 * float(np.sum(outer * dK)))
        # Noise: K = ... + exp(2 * log sigma_n) I, dK/d(log sigma_n) = 2 sn^2 I
        grads.append(0.5 * float(np.trace(outer)) * 2.0 * self.noise_variance)
        return lml, np.asarray(grads)

    @property
    def n_hyperparameters(self) -> int:
        """Kernel hyperparameters plus the log noise standard deviation."""
        return self.kernel.n_params + 1

    def get_theta(self) -> np.ndarray:
        """Current hyperparameters ``[kernel theta..., log sigma_n]``."""
        return np.concatenate(
            [self.kernel.get_theta(), [0.5 * np.log(self.noise_variance)]]
        )

    # ----------------------------------------------------------------- misc
    def copy(self) -> "GaussianProcess":
        """Deep-enough copy sharing no mutable state with the original."""
        model = GaussianProcess(
            kernel=self.kernel.copy(),
            noise_variance=self.noise_variance,
            mean=self.mean,
        )
        if self.is_fitted:
            model._X = self._X.copy()
            model._y = self._y.copy()
            model._state = self._state.copy()
        return model

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("GaussianProcess must be fitted first")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GaussianProcess(n_train={self.n_train}, kernel={self.kernel!r}, "
            f"noise_variance={self.noise_variance:.3e})"
        )
