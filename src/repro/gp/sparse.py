"""Budgeted inducing-point GP posterior (DTC/VFE predictive equations).

The exact GP caps campaigns near n≈1000: refits are O(n^3) and even the
incremental path pays O(n^2) per event.  This module adds the scalable
alternative behind the :class:`~repro.gp.gp.PosteriorState` seam — a
deterministic-training-conditional (DTC) posterior over ``m`` inducing
points chosen from the training set by greedy max-min (farthest-point)
selection:

    Q(x, x') = k(x, Z) Kuu^{-1} k(Z, x')
    mu(x*)   = m(x*) + k(x*, Z) B^{-1} c
    var(x*)  = k(x*, x*) - k(x*, Z) Kuu^{-1} k(Z, x*)
                         + k(x*, Z) B^{-1}  k(Z, x*)

with ``B = Kuu + sigma_n^{-2} Kuf Kfu`` and ``c = sigma_n^{-2} Kuf r``
(``r`` the residual targets).  Two factors are maintained: ``Luu`` of
``Kuu`` and ``LB`` of ``B``.  Telling one new observation is a rank-1
update of ``LB`` plus an O(m) update of ``c`` — O(m^2) per event
independent of n, which is what opens the 10k-evaluation scenario class.

Three exactness properties anchor the test suite (tests/test_properties.py):

* when the inducing set equals the training set the DTC posterior is
  *algebraically identical* to the exact GP posterior
  (``B = sigma^{-2} Kff (sigma^2 I + Kff)`` makes ``Kff^{-1}`` cancel);
* the posterior error versus the exact GP shrinks as ``m -> n``;
* the kriging-believer hallucination leaves the sparse mean surface
  unchanged: adding a pending point at its own predictive mean maps
  ``B -> B + sigma^{-2} kp kp^T`` and ``c -> c + sigma^{-2} kp (kp^T w)``,
  and a Sherman–Morrison step shows ``B'^{-1} c' = B^{-1} c`` exactly.
  :class:`SparseHallucinatedView` therefore shares ``w`` with its base and
  only rank-1-updates a copy of ``LB``, giving the Eq. 9 variance collapse
  (sigma-hat <= sigma) at O(m^2) per pending point.

This sparse path is an *extension beyond the paper*, which uses exact GPs
throughout (see docs/paper_mapping.md).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.gp import linalg
from repro.gp.gp import NOISE_FLOOR, VARIANCE_FLOOR, PosteriorState
from repro.gp.kernels import Kernel, SquaredExponential
from repro.gp.mean import MeanFunction, ZeroMean
from repro.utils.validation import check_finite, check_matrix, check_vector

__all__ = [
    "select_inducing",
    "SparseInducingState",
    "SparseGaussianProcess",
    "SparseHallucinatedView",
]


def select_inducing(X: np.ndarray, m: int, *, include=None) -> np.ndarray:
    """Deterministic greedy max-min (farthest-point) inducing selection.

    Starts from the point nearest the dataset centroid, then repeatedly adds
    the point farthest (Euclidean) from the current set.  Ties break toward
    the lowest index and the result is sorted, so the same dataset always
    yields the same inducing set — a requirement for bit-exact golden
    trajectories and crash/resume replay.  O(n m) time, O(n) memory.

    ``include`` forces specific dataset indices into the set before the
    greedy fill.  Pure max-min is space-filling, which systematically
    starves exactly the region a BO loop cares most about — the incumbent
    basin, where late observations cluster tightly and are therefore
    "close to the set" already.  Callers pass the incumbent and the most
    recent observations here so the approximation keeps resolution where
    the acquisition needs it (see ``SurrogateSession._fit_ml2_sparse``).
    """
    X = np.asarray(X, dtype=float)
    n = X.shape[0]
    m = int(m)
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if m >= n:
        return np.arange(n)
    if include is not None:
        # Deduplicate preserving order, cap at the budget.
        seen = set()
        selected = []
        for i in np.asarray(include, dtype=int).ravel():
            i = int(i)
            if not 0 <= i < n:
                raise ValueError(f"include index {i} out of range for n={n}")
            if i not in seen:
                seen.add(i)
                selected.append(i)
        selected = selected[:m]
    else:
        selected = []
    if not selected:
        centroid = X.mean(axis=0)
        selected = [int(np.argmin(np.sum((X - centroid) ** 2, axis=1)))]
    min_dist = np.sum((X - X[selected[0]]) ** 2, axis=1)
    for i in selected[1:]:
        np.minimum(min_dist, np.sum((X - X[i]) ** 2, axis=1), out=min_dist)
    for _ in range(len(selected), m):
        nxt = int(np.argmax(min_dist))
        selected.append(nxt)
        np.minimum(min_dist, np.sum((X - X[nxt]) ** 2, axis=1), out=min_dist)
    return np.array(sorted(selected), dtype=int)


@dataclasses.dataclass
class SparseInducingState(PosteriorState):
    """Inducing-point posterior value object (see module docstring).

    ``w`` is ``B^{-1} c`` — the sparse analogue of the exact state's
    ``alpha``.  ``stale_w`` mirrors the exact path's ``refresh_alpha=False``
    contract: an update may defer the ``w`` solve when a ``set_targets``
    immediately follows.
    """

    Z: np.ndarray
    luu: np.ndarray
    lb: np.ndarray
    c: np.ndarray
    w: np.ndarray
    inducing_indices: np.ndarray
    stale_w: bool = False

    @property
    def n_inducing(self) -> int:
        return self.Z.shape[0]

    def copy(self) -> "SparseInducingState":
        return SparseInducingState(
            Z=self.Z.copy(),
            luu=self.luu.copy(),
            lb=self.lb.copy(),
            c=self.c.copy(),
            w=self.w.copy(),
            inducing_indices=self.inducing_indices.copy(),
            stale_w=self.stale_w,
        )


class SparseGaussianProcess:
    """Inducing-point GP with O(m^2)-per-event incremental updates.

    Duck-typed to :class:`~repro.gp.gp.GaussianProcess` for everything the
    surrogate session and acquisitions touch (``fit`` / ``update`` /
    ``set_targets`` / ``predict`` / ``posterior_covariance`` /
    ``sample_posterior`` / ``condition_on_pending`` / ``copy``).
    Hyperparameters are *not* fitted here — the session runs ML-II on an
    exact helper GP over the inducing subset and passes the kernel in.
    """

    def __init__(
        self,
        dim: int | None = None,
        *,
        kernel: Kernel | None = None,
        noise_variance: float = 1e-6,
        mean: MeanFunction | None = None,
        n_inducing: int = 256,
    ):
        if kernel is None:
            if dim is None:
                raise ValueError("provide either dim or kernel")
            kernel = SquaredExponential(dim)
        elif dim is not None and kernel.dim != dim:
            raise ValueError(f"kernel.dim={kernel.dim} does not match dim={dim}")
        if noise_variance < 0:
            raise ValueError(f"noise_variance must be >= 0, got {noise_variance}")
        if int(n_inducing) < 1:
            raise ValueError(f"n_inducing must be >= 1, got {n_inducing}")
        self.kernel = kernel
        self.noise_variance = max(float(noise_variance), NOISE_FLOOR)
        self.mean = mean if mean is not None else ZeroMean()
        self.n_inducing = int(n_inducing)
        self._state: SparseInducingState | None = None
        self._workspace = linalg.Workspace()
        # Growth buffers: X/y/kfu share a doubling capacity so each tell is
        # amortized O(m) memory traffic instead of an O(n m) reallocation.
        # The cross-covariance cache is stored as k(X, Z) — rows per training
        # point — so the live slice ``[:n]`` stays C-contiguous as n grows.
        self._n = 0
        self._capacity = 0
        self._X_buf: np.ndarray | None = None
        self._y_buf: np.ndarray | None = None
        self._kfu_buf: np.ndarray | None = None

    # ------------------------------------------------------------ properties
    @property
    def dim(self) -> int:
        return self.kernel.dim

    @property
    def is_fitted(self) -> bool:
        return self._state is not None

    @property
    def posterior_state(self) -> SparseInducingState:
        self._require_fitted()
        return self._state

    @property
    def X(self) -> np.ndarray:
        self._require_fitted()
        return self._X_buf[: self._n]

    @property
    def y(self) -> np.ndarray:
        self._require_fitted()
        return self._y_buf[: self._n]

    @property
    def n_train(self) -> int:
        return self._n

    @property
    def inducing_points(self) -> np.ndarray:
        self._require_fitted()
        return self._state.Z.copy()

    @property
    def _kfu(self) -> np.ndarray:
        """The cached ``k(X, Z)`` block, shape ``(n, m)``."""
        return self._kfu_buf[: self._n]

    # ------------------------------------------------------------------ fit
    def fit(self, X, y, *, inducing_indices=None) -> "SparseGaussianProcess":
        """Select inducing points and build both factors from scratch.

        ``inducing_indices`` overrides the greedy selection (used by the
        session to reuse the subset ML-II already selected, and by the
        degenerate-equivalence tests to force ``Z == X``).
        """
        X = check_matrix(X, "X", cols=self.dim)
        y = check_vector(y, "y", size=X.shape[0])
        if X.shape[0] == 0:
            raise ValueError("cannot fit a GP on an empty dataset")
        check_finite(X, "X")
        check_finite(y, "y")
        n = X.shape[0]
        if inducing_indices is None:
            idx = select_inducing(X, min(self.n_inducing, n))
        else:
            idx = np.asarray(inducing_indices, dtype=int)
            if idx.ndim != 1 or idx.size < 1:
                raise ValueError("inducing_indices must be a non-empty 1-D index array")
        Z = X[idx].copy()
        m = Z.shape[0]

        Kuu = self.kernel(Z)
        luu, jitter = linalg.jittered_cholesky(Kuu)
        inv_noise = 1.0 / self.noise_variance

        self._ensure_capacity(n, m)
        self._n = n
        self._X_buf[:n] = X
        self._y_buf[:n] = y
        kfu = self._kfu_buf[:n]
        self.kernel.cross(X, Z, out=kfu)

        B = Kuu + inv_noise * (kfu.T @ kfu)
        if jitter:
            B[np.diag_indices_from(B)] += jitter
        lb, _ = linalg.jittered_cholesky(B)
        residual = y - self.mean(X)
        c = inv_noise * (kfu.T @ residual)
        w = linalg.cholesky_solve(lb, c)
        self._state = SparseInducingState(
            Z=Z, luu=luu, lb=lb, c=c, w=w, inducing_indices=idx.copy()
        )
        return self

    def _ensure_capacity(self, n: int, m: int | None = None) -> None:
        if m is None:
            m = self._kfu_buf.shape[1]
        if (
            self._capacity >= n
            and self._kfu_buf is not None
            and self._kfu_buf.shape[1] == m
        ):
            return
        capacity = max(n, 2 * self._capacity, 64)
        X_buf = np.empty((capacity, self.dim))
        y_buf = np.empty(capacity)
        kfu_buf = np.empty((capacity, m))
        if self._n and self._X_buf is not None:
            X_buf[: self._n] = self._X_buf[: self._n]
            y_buf[: self._n] = self._y_buf[: self._n]
            if self._kfu_buf is not None and self._kfu_buf.shape[1] == m:
                kfu_buf[: self._n] = self._kfu_buf[: self._n]
        self._X_buf, self._y_buf, self._kfu_buf = X_buf, y_buf, kfu_buf
        self._capacity = capacity

    # ------------------------------------------------------------- updates
    def update(
        self, X_new, y_new, *, refresh_alpha: bool = True
    ) -> "SparseGaussianProcess":
        """Fold in new observations at O(m^2) each (frozen hyperparameters).

        The inducing set is kept fixed: ``LB`` absorbs each new point by one
        rank-1 update with ``k(Z, x_new)/sigma_n`` and ``c`` by an O(m)
        axpy.  Mirrors :meth:`GaussianProcess.update` including the
        ``refresh_alpha=False`` leave-it-stale contract.  Unlike the exact
        append this can never lose positive definiteness (``B`` only grows
        by PSD terms), so there is no LinAlgError fallback path.
        """
        self._require_fitted()
        X_new = check_matrix(X_new, "X_new", cols=self.dim)
        y_new = check_vector(y_new, "y_new", size=X_new.shape[0])
        if X_new.shape[0] == 0:
            return self
        check_finite(X_new, "X_new")
        check_finite(y_new, "y_new")
        state = self._state
        m = state.n_inducing
        k = X_new.shape[0]
        k_new = self.kernel.cross(
            X_new, state.Z, out=self._workspace.array("k_new", (k, m))
        )
        inv_noise = 1.0 / self.noise_variance
        sigma = np.sqrt(self.noise_variance)
        scaled = self._workspace.array("scaled_row", m)
        for j in range(k):
            np.divide(k_new[j], sigma, out=scaled)
            linalg.cholesky_rank1_update(state.lb, scaled, overwrite=True)
        residual_new = y_new - self.mean(X_new)
        state.c += inv_noise * (k_new.T @ residual_new)

        self._ensure_capacity(self._n + k)
        self._X_buf[self._n : self._n + k] = X_new
        self._y_buf[self._n : self._n + k] = y_new
        self._kfu_buf[self._n : self._n + k] = k_new
        self._n += k

        if refresh_alpha:
            state.w = linalg.cholesky_solve(state.lb, state.c)
            state.stale_w = False
        else:
            state.stale_w = True
        return self

    def set_targets(self, y) -> "SparseGaussianProcess":
        """Replace all targets reusing the factors — one O(n m) matvec."""
        self._require_fitted()
        y = check_vector(y, "y", size=self._n)
        check_finite(y, "y")
        self._y_buf[: self._n] = y
        state = self._state
        residual = y - self.mean(self.X)
        state.c = (1.0 / self.noise_variance) * (self._kfu.T @ residual)
        state.w = linalg.cholesky_solve(state.lb, state.c)
        state.stale_w = False
        return self

    # -------------------------------------------------------------- predict
    def predict(self, X, return_std: bool = True):
        """DTC posterior mean (and standard deviation) at the rows of ``X``.

        Allocation-lean: the kernel block and both triangular solves run in
        workspace buffers (F-ordered so LAPACK solves in place).
        """
        self._require_fitted()
        state = self._state
        if state.stale_w:
            raise RuntimeError(
                "posterior weights are stale (update(refresh_alpha=False) "
                "without a following set_targets)"
            )
        X = check_matrix(X, "X", cols=self.dim)
        m = state.n_inducing
        q = X.shape[0]
        ku = self.kernel.cross(state.Z, X, out=self._workspace.array("ku", (m, q)))
        mu = self.mean(X) + ku.T @ state.w
        if not return_std:
            return mu
        v1 = self._workspace.array("v1", (m, q), order="F")
        np.copyto(v1, ku)
        v1 = linalg.solve_lower(state.luu, v1, overwrite_rhs=True)
        v2 = self._workspace.array("v2", (m, q), order="F")
        np.copyto(v2, ku)
        v2 = linalg.solve_lower(state.lb, v2, overwrite_rhs=True)
        var = self.kernel.diag(X) - np.sum(v1**2, axis=0) + np.sum(v2**2, axis=0)
        sigma = np.sqrt(np.maximum(var, VARIANCE_FLOOR))
        return mu, sigma

    def posterior_covariance(self, X) -> np.ndarray:
        """Full DTC posterior covariance at the rows of ``X``."""
        self._require_fitted()
        state = self._state
        X = check_matrix(X, "X", cols=self.dim)
        ku = self.kernel.cross(state.Z, X)
        v1 = linalg.solve_lower(state.luu, ku)
        v2 = linalg.solve_lower(state.lb, ku)
        cov = self.kernel(X) - v1.T @ v1 + v2.T @ v2
        return 0.5 * (cov + cov.T)

    def sample_posterior(self, X, n_samples: int = 1, rng=None) -> np.ndarray:
        """Draw joint posterior samples; returns shape ``(n_samples, n)``."""
        from repro.utils.rng import as_generator

        rng = as_generator(rng)
        X = check_matrix(X, "X", cols=self.dim)
        mu = self.predict(X, return_std=False)
        cov = self.posterior_covariance(X)
        lower, _ = linalg.jittered_cholesky(cov + VARIANCE_FLOOR * np.eye(len(mu)))
        z = rng.standard_normal((n_samples, len(mu)))
        return mu[None, :] + z @ lower.T

    # ------------------------------------------------- pending-point scheme
    def condition_on_pending(self, X_pending) -> "SparseHallucinatedView":
        """Hallucinate pending points (paper §III-C) at O(m^2) per point.

        Returns a :class:`SparseHallucinatedView` — predict-only, like the
        exact path's :class:`~repro.core.surrogate.HallucinatedView`, which
        is all acquisitions consume.  The mean surface is exactly unchanged
        (see module docstring); sigma-hat collapses at the pending points.
        """
        self._require_fitted()
        return SparseHallucinatedView(self, X_pending)

    # ----------------------------------------------------------------- misc
    def copy(self) -> "SparseGaussianProcess":
        """Deep-enough copy sharing no mutable state with the original."""
        model = SparseGaussianProcess(
            kernel=self.kernel.copy(),
            noise_variance=self.noise_variance,
            mean=self.mean,
            n_inducing=self.n_inducing,
        )
        if self.is_fitted:
            model._state = self._state.copy()
            model._n = self._n
            model._capacity = self._capacity
            model._X_buf = self._X_buf.copy()
            model._y_buf = self._y_buf.copy()
            model._kfu_buf = self._kfu_buf.copy()
        return model

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("SparseGaussianProcess must be fitted first")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        m = self._state.n_inducing if self.is_fitted else 0
        return (
            f"SparseGaussianProcess(n_train={self.n_train}, n_inducing={m}, "
            f"kernel={self.kernel!r}, noise_variance={self.noise_variance:.3e})"
        )


class SparseHallucinatedView:
    """Sparse-posterior view with pending points folded in, factor-shared.

    The kriging-believer pseudo-observations leave ``w = B^{-1} c`` exactly
    invariant (Sherman–Morrison, see module docstring), so the view shares
    the base model's weights and inducing factor ``Luu`` and owns only a
    rank-1-updated copy of the m-by-m ``LB`` — construction is O(m^2 k)
    regardless of n, and discarding the pending points is dropping the view.
    """

    def __init__(self, base: SparseGaussianProcess, X_pending):
        X_pending = check_matrix(X_pending, "X_pending", cols=base.dim)
        if X_pending.shape[0] == 0:
            raise ValueError("SparseHallucinatedView needs at least one pending point")
        check_finite(X_pending, "X_pending")
        base._require_fitted()
        self.base = base
        self._X_pending = X_pending.copy()
        state = base.posterior_state
        kp = base.kernel.cross(state.Z, X_pending)  # (m, k)
        sigma = np.sqrt(base.noise_variance)
        self._lb_p = state.lb.copy()
        for j in range(X_pending.shape[0]):
            linalg.cholesky_rank1_update(self._lb_p, kp[:, j] / sigma, overwrite=True)

    # ---------------------------------------------------------- properties
    @property
    def dim(self) -> int:
        return self.base.dim

    @property
    def n_pending(self) -> int:
        return self._X_pending.shape[0]

    @property
    def n_train(self) -> int:
        """Size of the hallucinated training set (real + pending)."""
        return self.base.n_train + self.n_pending

    @property
    def X_pending(self) -> np.ndarray:
        return self._X_pending.copy()

    # ------------------------------------------------------------- predict
    def predict(self, X, return_std: bool = True):
        """Posterior mean (and the paper's sigma-hat) at the rows of ``X``.

        The mean equals the base model's mean exactly (kriging believer);
        the standard deviation is collapsed around the pending points.
        """
        X = check_matrix(X, "X", cols=self.dim)
        mu = self.base.predict(X, return_std=False)
        if not return_std:
            return mu
        state = self.base.posterior_state
        ku = self.base.kernel.cross(state.Z, X)
        v1 = linalg.solve_lower(state.luu, ku)
        v2 = linalg.solve_lower(self._lb_p, ku)
        var = (
            self.base.kernel.diag(X)
            - np.sum(v1**2, axis=0)
            + np.sum(v2**2, axis=0)
        )
        sigma = np.sqrt(np.maximum(var, VARIANCE_FLOOR))
        return mu, sigma

    def discard(self) -> SparseGaussianProcess:
        """Return the untouched base model (dropping the view is free)."""
        return self.base

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SparseHallucinatedView(n_train={self.base.n_train}, "
            f"n_pending={self.n_pending})"
        )
