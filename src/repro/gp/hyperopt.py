"""ML-II (type-II maximum likelihood) hyperparameter fitting.

The kernel lengthscales, signal variance, and noise level are chosen by
maximizing the log marginal likelihood with multi-restart L-BFGS-B using the
analytic gradient from :meth:`repro.gp.gp.GaussianProcess.log_marginal_likelihood`.

Bounds are set for *standardized* data (inputs in the unit cube, outputs
zero-mean unit-variance), which is how the BO drivers call this module.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.gp.gp import GaussianProcess
from repro.utils.rng import as_generator

__all__ = ["HyperparameterBounds", "fit_hyperparameters"]


class HyperparameterBounds:
    """Log-space box bounds for ``[log l_1..d, log sigma_f, log sigma_n]``.

    Defaults suit unit-cube inputs and standardized outputs: lengthscales in
    ``[0.05, 20]``, signal std in ``[0.05, 20]``, noise std in
    ``[1e-5, 0.5]`` (circuit simulators are deterministic, so the noise term
    mostly absorbs model mismatch).  The lengthscale floor matters: sizing
    landscapes have bias cliffs, and letting ML-II shrink a dimension's
    lengthscale to ~0 turns the posterior into a white-noise interpolator
    that stalls the optimization.
    """

    def __init__(
        self,
        dim: int,
        lengthscale: tuple[float, float] = (5e-2, 20.0),
        signal_std: tuple[float, float] = (5e-2, 20.0),
        noise_std: tuple[float, float] = (1e-5, 0.5),
    ):
        for name, (lo, hi) in (
            ("lengthscale", lengthscale),
            ("signal_std", signal_std),
            ("noise_std", noise_std),
        ):
            if not (0 < lo < hi):
                raise ValueError(f"invalid {name} bounds ({lo}, {hi})")
        self.dim = int(dim)
        self.lengthscale = lengthscale
        self.signal_std = signal_std
        self.noise_std = noise_std

    def as_log_bounds(self) -> np.ndarray:
        """Bounds array of shape ``(dim + 2, 2)`` in log space."""
        rows = [np.log(self.lengthscale)] * self.dim
        rows.append(np.log(self.signal_std))
        rows.append(np.log(self.noise_std))
        return np.asarray(rows, dtype=float)

    def sample(self, rng) -> np.ndarray:
        """Draw a random log-space hyperparameter vector within the bounds."""
        bounds = self.as_log_bounds()
        return rng.uniform(bounds[:, 0], bounds[:, 1])


def fit_hyperparameters(
    model: GaussianProcess,
    *,
    bounds: HyperparameterBounds | None = None,
    n_restarts: int = 2,
    rng=None,
    maxiter: int = 200,
) -> GaussianProcess:
    """Fit ``model`` hyperparameters in place by multi-restart L-BFGS-B.

    The current hyperparameters seed the first start (warm start across BO
    iterations); additional starts are sampled uniformly in the log-space box.
    The model is left refactorized at the best hyperparameters found, and is
    guaranteed to end no worse than the incumbent: if every restart (clipping
    of the warm start included) lands below the incumbent's marginal
    likelihood on the current data, the incumbent hyperparameters are kept.
    This monotonicity is what makes the every-K-events refit schedule of
    :class:`~repro.core.surrogate.SurrogateSession` safe.

    Returns the same ``model`` for chaining.
    """
    if not model.is_fitted:
        raise RuntimeError("fit the GP on data before optimizing hyperparameters")
    if bounds is None:
        bounds = HyperparameterBounds(model.dim)
    if bounds.dim != model.dim:
        raise ValueError(f"bounds.dim={bounds.dim} does not match model.dim={model.dim}")
    rng = as_generator(rng)
    log_bounds = bounds.as_log_bounds()

    def objective(theta: np.ndarray):
        try:
            lml, grad = model.log_marginal_likelihood(theta, return_grad=True)
        except np.linalg.LinAlgError:
            return 1e25, np.zeros_like(theta)
        if not np.isfinite(lml):
            return 1e25, np.zeros_like(theta)
        return -lml, -grad

    incumbent_theta = model.get_theta()
    incumbent_lml = model.log_marginal_likelihood()
    incumbent_nll = -incumbent_lml if np.isfinite(incumbent_lml) else np.inf

    starts = [np.clip(incumbent_theta, log_bounds[:, 0], log_bounds[:, 1])]
    starts.extend(bounds.sample(rng) for _ in range(max(0, n_restarts - 1)))

    best_theta = None
    best_nll = np.inf
    for theta0 in starts:
        result = optimize.minimize(
            objective,
            theta0,
            jac=True,
            method="L-BFGS-B",
            bounds=log_bounds,
            options={"maxiter": maxiter},
        )
        if result.fun < best_nll:
            best_nll = float(result.fun)
            best_theta = result.x

    if best_theta is None or best_nll > incumbent_nll:
        # No restart beat the incumbent (possible when clipping moved the
        # warm start); keep the incumbent rather than regress.
        model.log_marginal_likelihood(incumbent_theta)
        return model
    model.log_marginal_likelihood(best_theta)
    return model
