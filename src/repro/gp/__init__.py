"""Gaussian-process regression substrate (paper §II-B).

Public surface:

* :class:`GaussianProcess` — exact GP with Eq. 2 posterior and the
  pending-point hallucination used by EasyBO's penalization scheme.
* Kernels: :class:`SquaredExponential` (the paper's choice), :class:`Matern52`.
* :func:`fit_hyperparameters` — ML-II fitting with analytic gradients.
* :class:`BoxTransform` / :class:`OutputStandardizer` — scaling helpers.
"""

from repro.gp.diagnostics import LooResult, leave_one_out
from repro.gp.gp import ExactCholeskyState, GaussianProcess, PosteriorState
from repro.gp.hyperopt import HyperparameterBounds, fit_hyperparameters
from repro.gp.kernels import Kernel, Matern52, SquaredExponential
from repro.gp.mean import ConstantMean, MeanFunction, ZeroMean
from repro.gp.sparse import (
    SparseGaussianProcess,
    SparseHallucinatedView,
    SparseInducingState,
    select_inducing,
)
from repro.gp.standardize import BoxTransform, OutputStandardizer

__all__ = [
    "GaussianProcess",
    "PosteriorState",
    "ExactCholeskyState",
    "SparseGaussianProcess",
    "SparseHallucinatedView",
    "SparseInducingState",
    "select_inducing",
    "HyperparameterBounds",
    "fit_hyperparameters",
    "LooResult",
    "leave_one_out",
    "Kernel",
    "SquaredExponential",
    "Matern52",
    "MeanFunction",
    "ZeroMean",
    "ConstantMean",
    "BoxTransform",
    "OutputStandardizer",
]
