"""Prior mean functions for Gaussian-process regression.

The paper's GP uses a zero mean on standardized observations; a constant mean
is provided for users who prefer to model the offset explicitly.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.utils.validation import check_matrix

__all__ = ["MeanFunction", "ZeroMean", "ConstantMean"]


class MeanFunction(abc.ABC):
    """Base class for prior means ``m(x)``."""

    @abc.abstractmethod
    def __call__(self, X: np.ndarray) -> np.ndarray:
        """Evaluate the mean at each row of ``X``; returns shape ``(n,)``."""


class ZeroMean(MeanFunction):
    """``m(x) = 0`` — the default when observations are standardized."""

    def __call__(self, X: np.ndarray) -> np.ndarray:
        X = check_matrix(X, "X")
        return np.zeros(X.shape[0])


class ConstantMean(MeanFunction):
    """``m(x) = c`` for a fixed constant ``c``."""

    def __init__(self, value: float = 0.0):
        self.value = float(value)

    def __call__(self, X: np.ndarray) -> np.ndarray:
        X = check_matrix(X, "X")
        return np.full(X.shape[0], self.value)
