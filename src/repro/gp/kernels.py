"""Covariance kernels with analytic hyperparameter gradients.

The paper's surrogate uses the squared-exponential (SE) kernel with automatic
relevance determination (ARD):

    k(x, x') = sigma_f^2 * exp(-0.5 * (x - x')^T Lambda^{-1} (x - x'))

with ``Lambda = diag(l_1^2, ..., l_d^2)``.  A Matérn-5/2 ARD kernel is also
provided because it is the common robustness fallback for circuit response
surfaces with mild non-smoothness.

Hyperparameters are stored and optimized in log space (``theta``), which keeps
them positive and makes the marginal-likelihood landscape better conditioned.
Layout: ``theta = [log l_1, ..., log l_d, log sigma_f]``.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.utils.validation import check_matrix

__all__ = ["Kernel", "SquaredExponential", "Matern52"]


class Kernel(abc.ABC):
    """Base class for stationary ARD kernels parameterized in log space."""

    def __init__(self, dim: int, lengthscales=None, variance: float = 1.0):
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.dim = int(dim)
        if lengthscales is None:
            lengthscales = np.ones(dim)
        lengthscales = np.asarray(lengthscales, dtype=float)
        if lengthscales.shape == ():
            lengthscales = np.full(dim, float(lengthscales))
        if lengthscales.shape != (dim,):
            raise ValueError(
                f"lengthscales must have shape ({dim},), got {lengthscales.shape}"
            )
        if np.any(lengthscales <= 0) or variance <= 0:
            raise ValueError("lengthscales and variance must be positive")
        self.lengthscales = lengthscales
        self.variance = float(variance)

    # ---------------------------------------------------------------- theta
    @property
    def n_params(self) -> int:
        """Number of log-space hyperparameters (d lengthscales + variance)."""
        return self.dim + 1

    def get_theta(self) -> np.ndarray:
        """Return hyperparameters as ``[log l_1..log l_d, log sigma_f]``."""
        return np.concatenate([np.log(self.lengthscales), [0.5 * np.log(self.variance)]])

    def set_theta(self, theta: np.ndarray) -> None:
        """Set hyperparameters from the log-space vector (see layout above)."""
        theta = np.asarray(theta, dtype=float)
        if theta.shape != (self.n_params,):
            raise ValueError(
                f"theta must have shape ({self.n_params},), got {theta.shape}"
            )
        self.lengthscales = np.exp(theta[: self.dim])
        self.variance = float(np.exp(2.0 * theta[self.dim]))

    # ------------------------------------------------------------- evaluate
    def __call__(self, X: np.ndarray, Z: np.ndarray | None = None) -> np.ndarray:
        """Covariance matrix ``k(X, Z)``; ``Z=None`` means ``k(X, X)``."""
        X = check_matrix(X, "X", cols=self.dim)
        Z = X if Z is None else check_matrix(Z, "Z", cols=self.dim)
        return self._from_sqdist(self._scaled_sqdist(X, Z))

    def diag(self, X: np.ndarray) -> np.ndarray:
        """Diagonal of ``k(X, X)`` — the prior variance at each point."""
        X = check_matrix(X, "X", cols=self.dim)
        return np.full(X.shape[0], self.variance)

    def cross(
        self, X: np.ndarray, Z: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Covariance block ``k(X, Z)``, optionally into a caller buffer.

        The allocation-lean variant of :meth:`__call__` for hot loops: with
        ``out`` (shape ``(len(X), len(Z))``) subclasses may compute the block
        fully in place.  Results agree with ``self(X, Z)`` to floating-point
        round-off but are *not* guaranteed bit-identical (the in-place
        evaluation may associate sums differently), so the exact-GP predict
        path — whose trajectories are pinned byte-for-byte by the golden
        tests — must keep using :meth:`__call__`.
        """
        K = self(X, Z)
        if out is None:
            return K
        np.copyto(out, K)
        return out

    def _scaled_sqdist(self, X: np.ndarray, Z: np.ndarray) -> np.ndarray:
        """Pairwise squared distances after dividing by the lengthscales."""
        Xs = X / self.lengthscales
        Zs = Z / self.lengthscales
        sq = (
            np.sum(Xs**2, axis=1)[:, None]
            + np.sum(Zs**2, axis=1)[None, :]
            - 2.0 * Xs @ Zs.T
        )
        return np.maximum(sq, 0.0)

    @abc.abstractmethod
    def _from_sqdist(self, sqdist: np.ndarray) -> np.ndarray:
        """Map scaled squared distances to covariances."""

    @abc.abstractmethod
    def gradients(self, X: np.ndarray) -> list[np.ndarray]:
        """Per-hyperparameter gradient matrices ``dK/dtheta_i`` at ``k(X, X)``."""

    def copy(self) -> "Kernel":
        """Independent copy with the same hyperparameters."""
        return type(self)(self.dim, self.lengthscales.copy(), self.variance)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(dim={self.dim}, "
            f"lengthscales={np.array2string(self.lengthscales, precision=3)}, "
            f"variance={self.variance:.4g})"
        )


class SquaredExponential(Kernel):
    """SE-ARD kernel — the surrogate kernel used in the paper (§II-B)."""

    def _from_sqdist(self, sqdist: np.ndarray) -> np.ndarray:
        return self.variance * np.exp(-0.5 * sqdist)

    def cross(
        self, X: np.ndarray, Z: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """In-place SE block: one GEMM into ``out`` plus elementwise passes."""
        X = check_matrix(X, "X", cols=self.dim)
        Z = check_matrix(Z, "Z", cols=self.dim)
        if out is None:
            out = np.empty((X.shape[0], Z.shape[0]))
        elif out.shape != (X.shape[0], Z.shape[0]):
            raise ValueError(
                f"out must have shape {(X.shape[0], Z.shape[0])}, got {out.shape}"
            )
        Xs = X / self.lengthscales
        Zs = Z / self.lengthscales
        np.dot(Xs, Zs.T, out=out)
        out *= -2.0
        out += np.sum(Xs**2, axis=1)[:, None]
        out += np.sum(Zs**2, axis=1)[None, :]
        np.maximum(out, 0.0, out=out)
        out *= -0.5
        np.exp(out, out=out)
        out *= self.variance
        return out

    def gradients(self, X: np.ndarray) -> list[np.ndarray]:
        X = check_matrix(X, "X", cols=self.dim)
        sqdist = self._scaled_sqdist(X, X)
        K = self.variance * np.exp(-0.5 * sqdist)
        grads: list[np.ndarray] = []
        for i in range(self.dim):
            diff = (X[:, i][:, None] - X[:, i][None, :]) / self.lengthscales[i]
            # d/d(log l_i): K * (x_i - z_i)^2 / l_i^2
            grads.append(K * diff**2)
        # d/d(log sigma_f) with variance = exp(2 * theta): 2 * K
        grads.append(2.0 * K)
        return grads


class Matern52(Kernel):
    """Matérn-5/2 ARD kernel (robustness alternative to the SE kernel)."""

    _SQRT5 = np.sqrt(5.0)

    def _from_sqdist(self, sqdist: np.ndarray) -> np.ndarray:
        r = np.sqrt(sqdist)
        s = self._SQRT5 * r
        return self.variance * (1.0 + s + s**2 / 3.0) * np.exp(-s)

    def gradients(self, X: np.ndarray) -> list[np.ndarray]:
        X = check_matrix(X, "X", cols=self.dim)
        sqdist = self._scaled_sqdist(X, X)
        r = np.sqrt(sqdist)
        s = self._SQRT5 * r
        expo = np.exp(-s)
        K = self.variance * (1.0 + s + s**2 / 3.0) * expo
        # dK/d(r^2) computed via dK/ds * ds/d(r^2); guard r=0 (gradient is 0).
        # K(s) = v (1 + s + s^2/3) e^{-s};  dK/ds = -v (s/3)(1+s) e^{-s}
        # s = sqrt(5) r, r^2 = sqdist => ds/d(sqdist) = sqrt(5)/(2 r)
        with np.errstate(divide="ignore", invalid="ignore"):
            dK_dsq = np.where(
                r > 0,
                -self.variance * (s / 3.0) * (1.0 + s) * expo * self._SQRT5 / (2.0 * r),
                0.0,
            )
        grads: list[np.ndarray] = []
        for i in range(self.dim):
            diff2 = ((X[:, i][:, None] - X[:, i][None, :]) / self.lengthscales[i]) ** 2
            # d(sqdist)/d(log l_i) = -2 * diff2
            grads.append(dK_dsq * (-2.0 * diff2))
        grads.append(2.0 * K)
        return grads
