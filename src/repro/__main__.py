"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Print the library version and the available algorithms/problems.
``demo``
    Run a 30-second EasyBO demonstration on a synthetic benchmark.
``opamp`` / ``classe``
    Size one of the paper's circuits at a small budget.
``resume``
    Continue a crashed run from its write-ahead journal (see ``--journal``
    on the run commands and ``docs/crash_recovery.md``).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def cmd_info(_args) -> int:
    import repro
    from repro.core.easybo import ALGORITHM_FAMILIES

    print(f"repro {repro.__version__} — EasyBO (DAC 2020) reproduction")
    print("\nalgorithm families (use with repro.make_algorithm):")
    for name in sorted(ALGORITHM_FAMILIES):
        print(f"  {name}")
    print("\nbenchmark problems:")
    print("  repro.circuits.OpAmpProblem        (10 vars, Eq. 10 FOM)")
    print("  repro.circuits.ClassEProblem       (12 vars, Eq. 11 FOM)")
    print("  repro.circuits.ConstrainedOpAmpProblem")
    print("  repro.circuits.branin / hartmann6 / ackley / ...")
    return 0


def _journal_kwargs(args) -> dict:
    journal = getattr(args, "journal", None)
    return {} if journal is None else {"journal": journal, "checkpoint_every": 5}


def cmd_demo(args) -> int:
    from repro import EasyBO
    from repro.circuits import hartmann6

    problem = hartmann6()
    print(f"EasyBO on Hartmann-6 (optimum {problem.optimum:.3f}), "
          f"batch size {args.batch}, {args.budget} evaluations...")
    result = EasyBO(
        problem, batch_size=args.batch, n_init=15, max_evals=args.budget,
        rng=args.seed, **_journal_kwargs(args),
    ).optimize()
    print(f"best value {result.best_fom:.4f} "
          f"(regret {problem.regret(result.best_fom):.4f})")
    print(f"simulated wall-clock {result.wall_clock:.0f} s at "
          f"{result.trace.utilization():.0%} worker utilization")
    return 0


def cmd_opamp(args) -> int:
    from repro import EasyBO
    from repro.circuits import OpAmpProblem

    result = EasyBO(
        OpAmpProblem(), batch_size=args.batch, n_init=15,
        max_evals=args.budget, rng=args.seed, **_journal_kwargs(args),
    ).optimize()
    check = OpAmpProblem().evaluate(result.best_x)
    print(f"best FOM {result.best_fom:.2f}")
    for key, value in check.metrics.items():
        print(f"  {key:<8} {value:.2f}")
    print(f"design: {np.array2string(result.best_x, precision=3)}")
    return 0


def cmd_classe(args) -> int:
    from repro import EasyBO
    from repro.circuits import ClassEProblem

    problem = ClassEProblem(settle_periods=12, measure_periods=3,
                            steps_per_period=48)
    result = EasyBO(
        problem, batch_size=args.batch, n_init=15, max_evals=args.budget,
        rng=args.seed, **_journal_kwargs(args),
    ).optimize()
    check = problem.evaluate(result.best_x)
    print(f"best FOM {result.best_fom:.3f}")
    print(f"  PAE  {check.metrics['pae']:.1%}")
    print(f"  Pout {1e3 * check.metrics['p_out_w']:.1f} mW")
    return 0


def cmd_resume(args) -> int:
    from repro import resume

    result = resume(args.journal)
    print(f"resumed {result.algorithm} on {result.problem}: "
          f"best FOM {result.best_fom:.4f} after {result.n_evaluations} "
          f"evaluations ({result.trace.n_orphaned} orphaned at the crash)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="library and algorithm inventory")
    for name, default_budget in (("demo", 50), ("opamp", 60), ("classe", 40)):
        p = sub.add_parser(name)
        p.add_argument("--budget", type=int, default=default_budget)
        p.add_argument("--batch", type=int, default=5)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--journal", default=None, metavar="PATH",
            help="write a crash-safe run journal to PATH (resumable with "
                 "'python -m repro resume PATH')",
        )
    p = sub.add_parser(
        "resume",
        help="continue a crashed run from its journal",
        description="Replay a run journal written with --journal and finish "
                    "the run.  Problems with non-default constructor "
                    "arguments must be resumed through the API "
                    "(repro.resume(path, problem=...)) instead.",
    )
    p.add_argument("journal", help="journal file the crashed run was writing")

    args = parser.parse_args(argv)
    handler = {
        "info": cmd_info,
        "demo": cmd_demo,
        "opamp": cmd_opamp,
        "classe": cmd_classe,
        "resume": cmd_resume,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
