"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Print the library version and the available algorithms/problems.
``demo``
    Run a 30-second EasyBO demonstration on a synthetic benchmark.
``opamp`` / ``classe``
    Size one of the paper's circuits at a small budget.
``resume``
    Continue a crashed run from its write-ahead journal (see ``--journal``
    on the run commands and ``docs/crash_recovery.md``).
``serve``
    Host many concurrent ask/tell campaigns over the loopback socket RPC
    (see ``docs/campaign_server.md``).
``summary``
    Print the paper-style table (Best/Worst/Mean/Std/Time) and the pool
    telemetry of a saved runs file — or, with ``--server [HOST:]PORT``,
    the live health of a campaign server (campaign states, uptime,
    recoveries, idempotent-RPC retry/replay counters).
``run``
    Generic driver: any algorithm label from ``make_algorithm`` on any
    named benchmark problem (``--pending-policy`` picks the asynchronous
    pending-point policy, see ``docs/pending_policies.md``).
``tournament``
    Head-to-head of the pending-point policies: policies x circuits x
    batch sizes x fault rates over paired seeds, ranked by simple regret.
``trace``
    Render a run trace written with ``--trace``/``--metrics``: the span
    tree (run → iteration → fit / acquisition-maximize / dispatch / wait)
    plus a top-k hotspot table (see ``docs/observability.md``).

The run commands take ``--pool {virtual,thread,process}`` to pick the
evaluation backend (see ``docs/distributed.md``) and ``--workers N`` to
size the pool independently of the proposal batch.  ``--trace PATH``
records a span trace, and ``--metrics`` additionally snapshots the run's
metrics registry into the result (both off by default — observability is
strictly opt-in and costs nothing when disabled).
"""

from __future__ import annotations

import argparse
import re
import sys

import numpy as np


def cmd_info(_args) -> int:
    import repro
    from repro.core.easybo import ALGORITHM_FAMILIES

    print(f"repro {repro.__version__} — EasyBO (DAC 2020) reproduction")
    print("\nalgorithm families (use with repro.make_algorithm):")
    for name in sorted(ALGORITHM_FAMILIES):
        print(f"  {name}")
    print("\nbenchmark problems:")
    print("  repro.circuits.OpAmpProblem        (10 vars, Eq. 10 FOM)")
    print("  repro.circuits.ClassEProblem       (12 vars, Eq. 11 FOM)")
    print("  repro.circuits.ConstrainedOpAmpProblem")
    print("  repro.circuits.branin / hartmann6 / ackley / ...")
    return 0


def _journal_kwargs(args) -> dict:
    journal = getattr(args, "journal", None)
    return {} if journal is None else {"journal": journal, "checkpoint_every": 5}


def _pool_kwargs(args) -> dict:
    """Driver kwargs for the ``--pool`` / ``--workers`` CLI flags."""
    from repro.sched import pool_factory_by_name

    pool = getattr(args, "pool", "virtual")
    if pool == "virtual":
        return {}
    return {"pool_factory": pool_factory_by_name(pool)}


def _batch(args) -> int:
    """Pool size: ``--workers`` wins over ``--batch`` when given.

    EasyBO keeps exactly B points in flight, so the worker count and the
    batch size are the same knob; ``--workers`` is the spelling that makes
    sense next to ``--pool process``.
    """
    workers = getattr(args, "workers", None)
    return int(workers) if workers is not None else int(args.batch)


def _obs_kwargs(args, default_trace: str):
    """Driver kwargs and a finish callback for ``--metrics`` / ``--trace``.

    ``--trace PATH`` arms the span tracer; ``--metrics`` arms the registry
    *and* (when ``--trace`` is absent) derives a default trace path, so a
    bare ``--metrics`` run is immediately inspectable with the ``trace``
    verb.  The finish callback closes the tracer (also on the exception
    path) and prints the metrics table of the finished run.
    """
    metrics_on = bool(getattr(args, "metrics", False))
    trace_path = getattr(args, "trace", None)
    if not metrics_on and trace_path is None:
        return {}, lambda result: None
    from repro.obs import MetricsRegistry, Tracer

    if trace_path is None:
        trace_path = default_trace
    tracer = Tracer(trace_path)
    kwargs: dict = {"tracer": tracer}
    if metrics_on:
        kwargs["metrics"] = MetricsRegistry()

    def finish(result) -> None:
        from repro.utils.tables import format_table

        tracer.close()
        print(f"trace: {tracer.n_spans} spans written to {trace_path} "
              f"(inspect with 'python -m repro trace {trace_path}')")
        if result is not None and result.metrics:
            registry = MetricsRegistry.from_dict(result.metrics)
            print(format_table(["Metric", "Kind", "Value"],
                               registry.summary_rows(), title="run metrics"))

    return kwargs, finish


def _print_telemetry(result, args) -> None:
    """Surface pool telemetry for the real (non-virtual-clock) backends."""
    telemetry = result.pool_telemetry
    if telemetry is not None and getattr(args, "pool", "virtual") != "virtual":
        print(telemetry.summary_line())


def cmd_demo(args) -> int:
    from repro import EasyBO
    from repro.circuits import hartmann6

    problem = hartmann6()
    batch = _batch(args)
    print(f"EasyBO on Hartmann-6 (optimum {problem.optimum:.3f}), "
          f"batch size {batch}, {args.budget} evaluations...")
    obs_kwargs, finish = _obs_kwargs(args, "demo-trace.jsonl")
    result = None
    try:
        result = EasyBO(
            problem, batch_size=batch, n_init=15, max_evals=args.budget,
            rng=args.seed, **_journal_kwargs(args), **_pool_kwargs(args),
            **obs_kwargs,
        ).optimize()
    finally:
        finish(result)
    print(f"best value {result.best_fom:.4f} "
          f"(regret {problem.regret(result.best_fom):.4f})")
    print(f"simulated wall-clock {result.wall_clock:.0f} s at "
          f"{result.trace.utilization():.0%} worker utilization")
    _print_telemetry(result, args)
    return 0


def cmd_opamp(args) -> int:
    from repro import EasyBO
    from repro.circuits import OpAmpProblem

    obs_kwargs, finish = _obs_kwargs(args, "opamp-trace.jsonl")
    result = None
    try:
        result = EasyBO(
            OpAmpProblem(), batch_size=_batch(args), n_init=15,
            max_evals=args.budget, rng=args.seed, **_journal_kwargs(args),
            **_pool_kwargs(args), **obs_kwargs,
        ).optimize()
    finally:
        finish(result)
    check = OpAmpProblem().evaluate(result.best_x)
    print(f"best FOM {result.best_fom:.2f}")
    for key, value in check.metrics.items():
        print(f"  {key:<8} {value:.2f}")
    print(f"design: {np.array2string(result.best_x, precision=3)}")
    _print_telemetry(result, args)
    return 0


def cmd_classe(args) -> int:
    from repro import EasyBO
    from repro.circuits import ClassEProblem

    problem = ClassEProblem(settle_periods=12, measure_periods=3,
                            steps_per_period=48)
    obs_kwargs, finish = _obs_kwargs(args, "classe-trace.jsonl")
    result = None
    try:
        result = EasyBO(
            problem, batch_size=_batch(args), n_init=15,
            max_evals=args.budget, rng=args.seed, **_journal_kwargs(args),
            **_pool_kwargs(args), **obs_kwargs,
        ).optimize()
    finally:
        finish(result)
    check = problem.evaluate(result.best_x)
    print(f"best FOM {result.best_fom:.3f}")
    print(f"  PAE  {check.metrics['pae']:.1%}")
    print(f"  Pout {1e3 * check.metrics['p_out_w']:.1f} mW")
    _print_telemetry(result, args)
    return 0


def cmd_resume(args) -> int:
    from repro import resume

    obs_kwargs, finish = _obs_kwargs(args, "resume-trace.jsonl")
    result = None
    try:
        result = resume(args.journal, **obs_kwargs)
    finally:
        finish(result)
    print(f"resumed {result.algorithm} on {result.problem}: "
          f"best FOM {result.best_fom:.4f} after {result.n_evaluations} "
          f"evaluations ({result.trace.n_orphaned} orphaned at the crash)")
    return 0


def _resolve_problem(name: str):
    """Benchmark problem by CLI name: a circuit or a synthetic function."""
    from repro import circuits

    if name == "opamp":
        return circuits.OpAmpProblem()
    if name == "classe":
        return circuits.ClassEProblem(settle_periods=12, measure_periods=3,
                                      steps_per_period=48)
    return circuits.by_name(name)


def cmd_run(args) -> int:
    from repro.core.easybo import make_algorithm

    problem = _resolve_problem(args.problem)
    label = args.algorithm.strip()
    if args.workers is not None:
        label = re.sub(r"-\d+$", "", label) + f"-{args.workers}"
    obs_kwargs, finish = _obs_kwargs(args, f"{args.problem}-trace.jsonl")
    policy_kwargs = (
        {} if args.pending_policy is None
        else {"pending_policy": args.pending_policy}
    )
    for name in ("surrogate", "max_exact_n", "n_inducing"):
        value = getattr(args, name, None)
        if value is not None:
            policy_kwargs[name] = value
    algorithm = make_algorithm(
        label, problem, max_evals=args.budget, rng=args.seed,
        n_init=args.n_init, **policy_kwargs, **_journal_kwargs(args),
        **_pool_kwargs(args), **obs_kwargs,
    )
    result = None
    try:
        result = algorithm.run()
    finally:
        finish(result)
    policy_note = (
        f" [pending policy: {result.pending_policy}]"
        if result.pending_policy else ""
    )
    print(f"{result.algorithm} on {args.problem}: best FOM "
          f"{result.best_fom:.4f} after {result.n_evaluations} evaluations "
          f"(wall-clock {result.wall_clock:.1f} s){policy_note}")
    _print_telemetry(result, args)
    return 0


def cmd_tournament(args) -> int:
    from repro.core.tournament import (
        SCALES,
        check_tournament,
        render_report,
        run_tournament,
    )

    scale = SCALES["smoke" if args.smoke else args.scale]

    def progress(done: int, total: int, cell) -> None:
        print(f"[{done:>3}/{total}] {cell.policy:<12} {cell.circuit:<9} "
              f"B={cell.batch} fault={cell.fault_rate:g} seed={cell.seed} "
              f"regret={cell.regret:.4g}", flush=True)

    results = run_tournament(scale, progress=progress if args.verbose else None)
    print("\n" + render_report(scale, results))
    if args.check:
        check_tournament(scale, results)
        print("checks passed (full grid, paired seeds, reproducible cell, "
              "hallucinate matches golden)")
    return 0


def cmd_serve(args) -> int:
    from repro.distributed.server import CampaignServer
    from repro.obs import MetricsRegistry, Observability

    server = CampaignServer(
        host=args.host, port=args.port, journal_dir=args.journal_dir,
        max_workers=args.max_workers,
        obs=Observability(metrics=MetricsRegistry()),
    )
    # Flush so wrappers piping our stdout see the banner (and the port)
    # before they try to dial in.
    print(f"campaign server listening on {server.host}:{server.port} "
          f"(journal dir: {args.journal_dir or 'disabled'}, "
          f"worker capacity: {args.max_workers or 'unbounded'})",
          flush=True)
    if server.recoveries:
        print(f"recovered {server.recoveries} campaign(s) from "
              f"{args.journal_dir}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.stop()
        print("campaign server stopped")
    return 0


def cmd_trace(args) -> int:
    from repro.obs import render_trace

    print(render_trace(args.trace, top=args.top))
    return 0


def _summary_server(address: str) -> int:
    """Print a live server's health: campaigns, uptime, RPC idempotency."""
    from repro.distributed.client import CampaignClient
    from repro.utils.tables import format_table

    host, _, port = address.rpartition(":")
    with CampaignClient(host or "127.0.0.1", int(port), retries=1) as client:
        metrics = client.metrics()
    rows = [
        ["campaigns", str(metrics.get("campaigns", 0))],
        ["  active", str(metrics.get("active", 0))],
        ["  finished", str(metrics.get("finished", 0))],
        ["  suspended", str(metrics.get("suspended", 0))],
        ["  failed", str(metrics.get("failed", 0))],
        ["workers leased", f"{metrics.get('workers_leased', 0)}"
                           f"/{metrics.get('worker_capacity') or 'inf'}"],
        ["uptime", f"{metrics.get('uptime_seconds', 0.0):.1f}s"],
        ["recoveries", str(metrics.get("recoveries", 0))],
        ["rpc retries seen", str(metrics.get("rpc_retries", 0))],
        ["rpc replayed replies", str(metrics.get("rpc_replayed_replies", 0))],
        ["frame corruptions", str(metrics.get("frame_corruptions", 0))],
    ]
    print(format_table(["Metric", "Value"], rows))
    registry = metrics.get("registry")
    if registry and registry.get("counters"):
        print("\nserver counters:")
        for name in sorted(registry["counters"]):
            print(f"  {name}: {registry['counters'][name]}")
    return 0


def cmd_summary(args) -> int:
    from repro import summarize_runs
    from repro.core.persistence import load_runs
    from repro.utils.tables import format_table

    if args.server:
        return _summary_server(args.server)
    if not args.runs:
        print("summary: provide a runs file or --server [HOST:]PORT",
              file=sys.stderr)
        return 2
    grid = load_runs(args.runs)
    rows = [summarize_runs(runs).as_row() for runs in grid.values() if runs]
    print(format_table(["Algorithm", "Best", "Worst", "Mean", "Std", "Time"],
                       rows))
    telemetry_lines = []
    for label, runs in grid.items():
        pools = [r.pool_telemetry for r in runs if r.pool_telemetry is not None]
        if pools:
            telemetry_lines.append(f"  {label}: {pools[-1].summary_line()}")
    if telemetry_lines:
        print("\npool telemetry (last repetition per algorithm):")
        for line in telemetry_lines:
            print(line)
    return 0


def _add_obs_flags(p) -> None:
    p.add_argument(
        "--trace", default=None, metavar="PATH", dest="trace",
        help="record a hierarchical span trace to PATH (render with "
             "'python -m repro trace PATH')",
    )
    p.add_argument(
        "--metrics", action="store_true",
        help="snapshot the run's metrics registry into the result and "
             "print it; also writes a trace (to --trace PATH, or a "
             "default next to the working directory)",
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="library and algorithm inventory")
    for name, default_budget in (("demo", 50), ("opamp", 60), ("classe", 40)):
        p = sub.add_parser(name)
        p.add_argument("--budget", type=int, default=default_budget)
        p.add_argument("--batch", type=int, default=5)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--journal", default=None, metavar="PATH",
            help="write a crash-safe run journal to PATH (resumable with "
                 "'python -m repro resume PATH')",
        )
        p.add_argument(
            "--pool", choices=("virtual", "thread", "process"),
            default="virtual",
            help="evaluation backend: simulated clock (default), threads, "
                 "or one OS process per worker",
        )
        p.add_argument(
            "--workers", type=int, default=None, metavar="N",
            help="pool size (overrides --batch; EasyBO keeps one point in "
                 "flight per worker)",
        )
        _add_obs_flags(p)
    p = sub.add_parser(
        "run",
        help="run any algorithm label on any named benchmark problem",
        description="Generic driver: an algorithm label accepted by "
                    "repro.make_algorithm (e.g. EasyBO-5, pBO-10, EI, DE, "
                    "Random) on a named problem (opamp, classe, or a "
                    "synthetic function: branin, hartmann6, ackley, "
                    "rastrigin, levy, sphere).",
    )
    p.add_argument("--problem", default="hartmann6",
                   help="benchmark name (default: hartmann6)")
    p.add_argument("--algorithm", default="EasyBO-5", metavar="LABEL",
                   help="algorithm label; a trailing -<int> is the batch "
                        "size (default: EasyBO-5)")
    p.add_argument("--budget", type=int, default=50)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--n-init", type=int, default=10, dest="n_init",
                   help="initial design size for the BO drivers")
    p.add_argument(
        "--journal", default=None, metavar="PATH",
        help="write a crash-safe run journal to PATH",
    )
    p.add_argument(
        "--pool", choices=("virtual", "thread", "process"), default="virtual",
        help="evaluation backend",
    )
    p.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="pool size (overrides the label's trailing batch size)",
    )
    p.add_argument(
        "--pending-policy", dest="pending_policy", default=None,
        choices=("hallucinate", "lp", "pessimistic", "none"),
        help="asynchronous pending-point policy for the EasyBO family "
             "(default: the label's policy; plain EasyBO hallucinates)",
    )
    p.add_argument(
        "--surrogate", default=None, choices=("exact", "sparse", "auto"),
        help="GP posterior: exact (paper), sparse (inducing-point), or "
             "auto (exact until --max-exact-n observations; default)",
    )
    p.add_argument(
        "--max-exact-n", type=int, default=None, dest="max_exact_n",
        metavar="N",
        help="observation count past which surrogate=auto goes sparse",
    )
    p.add_argument(
        "--n-inducing", type=int, default=None, dest="n_inducing",
        metavar="M",
        help="inducing-point budget for the sparse surrogate",
    )
    _add_obs_flags(p)
    p = sub.add_parser(
        "tournament",
        help="rank the pending-point policies over a seeded grid",
        description="Run every pending-point policy over circuits x batch "
                    "sizes x fault rates with paired seeds and print a "
                    "ranked regret table (docs/pending_policies.md).  "
                    "--check asserts the harness ran the full grid, is "
                    "seed-reproducible, and that the hallucinate policy "
                    "still matches its committed golden trajectory.",
    )
    p.add_argument("--scale", choices=("smoke", "reduced", "paper"),
                   default="reduced")
    p.add_argument("--smoke", action="store_true",
                   help="shorthand for --scale smoke")
    p.add_argument("--check", action="store_true",
                   help="assert grid completeness, reproducibility, and the "
                        "hallucinate-matches-golden invariant")
    p.add_argument("--verbose", action="store_true",
                   help="print one line per completed cell")
    p = sub.add_parser(
        "resume",
        help="continue a crashed run from its journal",
        description="Replay a run journal written with --journal and finish "
                    "the run.  Problems with non-default constructor "
                    "arguments must be resumed through the API "
                    "(repro.resume(path, problem=...)) instead.",
    )
    p.add_argument("journal", help="journal file the crashed run was writing")
    _add_obs_flags(p)
    p = sub.add_parser(
        "serve",
        help="host many concurrent ask/tell campaigns over loopback RPC",
        description="Start the multi-tenant campaign server "
                    "(docs/campaign_server.md).  Clients create campaigns "
                    "by algorithm label + problem name and drive them with "
                    "ask/tell round-trips, or let the server lease workers "
                    "and evaluate.  Each campaign journals to "
                    "--journal-dir/<id>.journal and is resumable after a "
                    "crash or disconnect.",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="listening port (default: an ephemeral port, "
                        "printed at startup)")
    p.add_argument("--journal-dir", default=None, metavar="DIR",
                   dest="journal_dir",
                   help="directory for per-campaign crash-safe journals")
    p.add_argument("--max-workers", type=int, default=None, metavar="N",
                   dest="max_workers",
                   help="cap on workers leased across all server-evaluated "
                        "campaigns")
    p = sub.add_parser(
        "trace",
        help="render a span trace written with --trace/--metrics",
        description="Print the hierarchical span tree and the top-k "
                    "hotspot table of a trace file (CRC-framed JSONL "
                    "written by the run commands' --trace/--metrics "
                    "flags).  Torn tails from crashed runs are tolerated.",
    )
    p.add_argument("trace", help="trace file to render")
    p.add_argument("--top", type=int, default=10, metavar="K",
                   help="hotspot table size (default: 10)")
    p = sub.add_parser(
        "summary",
        help="print the paper-style table and pool telemetry of a runs file",
        description="Summarize a JSON runs file written with "
                    "repro.core.persistence.save_runs: Best/Worst/Mean/Std/"
                    "Time per algorithm, plus evaluation-pool telemetry for "
                    "runs that recorded it (format v5+).  With --server, "
                    "summarize a live campaign server instead: campaign "
                    "states, uptime, recoveries, and the idempotent-RPC "
                    "retry/replay counters.",
    )
    p.add_argument("runs", nargs="?", default=None,
                   help="runs file written by save_runs")
    p.add_argument("--server", default=None, metavar="[HOST:]PORT",
                   help="summarize a live campaign server's metrics verb "
                        "instead of a runs file")

    args = parser.parse_args(argv)
    handler = {
        "info": cmd_info,
        "demo": cmd_demo,
        "opamp": cmd_opamp,
        "classe": cmd_classe,
        "run": cmd_run,
        "tournament": cmd_tournament,
        "resume": cmd_resume,
        "serve": cmd_serve,
        "trace": cmd_trace,
        "summary": cmd_summary,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
